package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestDijkstraPathGraph(t *testing.T) {
	g := Path(5)
	w := []float64{1, 2, 3, 4}
	tree, err := Dijkstra(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 3, 6, 10}
	for v, d := range want {
		if tree.Dist[v] != d {
			t.Errorf("Dist[%d] = %g, want %g", v, tree.Dist[v], d)
		}
	}
	path, ok := tree.PathTo(4)
	if !ok || len(path) != 4 {
		t.Fatalf("PathTo(4) = %v, %v", path, ok)
	}
	if err := g.ValidatePath(0, 4, path); err != nil {
		t.Error(err)
	}
}

func TestDijkstraPicksCheaperParallelEdge(t *testing.T) {
	g := New(2)
	a := g.AddEdge(0, 1)
	b := g.AddEdge(0, 1)
	tree, err := Dijkstra(g, []float64{5, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Dist[1] != 2 {
		t.Fatalf("Dist[1] = %g", tree.Dist[1])
	}
	if tree.ViaEdge[1] != b {
		t.Fatalf("ViaEdge[1] = %d, want %d (not %d)", tree.ViaEdge[1], b, a)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	tree, err := Dijkstra(g, []float64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Reachable(2) {
		t.Error("vertex 2 reported reachable")
	}
	if _, ok := tree.PathTo(2); ok {
		t.Error("PathTo(2) succeeded")
	}
	if tree.Hops(2) != -1 {
		t.Error("Hops(2) != -1")
	}
}

func TestDijkstraErrors(t *testing.T) {
	g := Path(3)
	if _, err := Dijkstra(g, []float64{1}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Dijkstra(g, []float64{1, -1}, 0); !errors.Is(err, ErrNegativeWeight) {
		t.Errorf("negative weight error = %v", err)
	}
	if _, err := Dijkstra(g, []float64{1, 1}, 9); err == nil {
		t.Error("bad source accepted")
	}
}

func TestDijkstraDirected(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	tree, err := Dijkstra(g, []float64{1, 1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Dist[2] != 2 {
		t.Errorf("directed Dist[2] = %g", tree.Dist[2])
	}
	back, err := Dijkstra(g, []float64{1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dist[1] != 2 { // 2 -> 0 -> 1
		t.Errorf("directed Dist 2->1 = %g", back.Dist[1])
	}
}

func TestDijkstraZeroWeights(t *testing.T) {
	g := Cycle(4)
	tree, err := Dijkstra(g, []float64{0, 0, 0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if tree.Dist[v] != 0 {
			t.Errorf("Dist[%d] = %g", v, tree.Dist[v])
		}
	}
}

func TestBellmanFordMatchesDijkstraNonnegative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		g := ConnectedErdosRenyi(n, 0.2, rng)
		w := UniformRandomWeights(g, 0, 5, rng)
		d1, err := Dijkstra(g, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := BellmanFord(g, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if math.Abs(d1.Dist[v]-d2.Dist[v]) > 1e-9 {
				t.Fatalf("trial %d: Dijkstra %g vs BellmanFord %g at %d", trial, d1.Dist[v], d2.Dist[v], v)
			}
		}
	}
}

func TestBellmanFordNegativeEdgeDirected(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tree, err := BellmanFord(g, []float64{4, -3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Dist[2] != 1 {
		t.Errorf("Dist[2] = %g, want 1", tree.Dist[2])
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, err := BellmanFord(g, []float64{1, -2}, 0); !errors.Is(err, ErrNegativeCycle) {
		t.Errorf("err = %v", err)
	}
}

func TestBellmanFordUndirectedNegativeEdgeIsCycle(t *testing.T) {
	g := Path(3)
	if _, err := BellmanFord(g, []float64{1, -1}, 0); !errors.Is(err, ErrNegativeCycle) {
		t.Errorf("err = %v", err)
	}
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		g := ErdosRenyi(n, 0.3, rng)
		w := UniformRandomWeights(g, 0, 3, rng)
		apsp, err := AllPairsDistances(g, w)
		if err != nil {
			t.Fatal(err)
		}
		fw, err := FloydWarshall(g, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := apsp[i][j], fw[i][j]
				if math.IsInf(a, 1) != math.IsInf(b, 1) {
					t.Fatalf("reachability disagrees at %d,%d", i, j)
				}
				if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-9 {
					t.Fatalf("distance disagrees at %d,%d: %g vs %g", i, j, a, b)
				}
			}
		}
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(25)
		g := ConnectedErdosRenyi(n, 0.2, rng)
		w := UniformRandomWeights(g, 0, 10, rng)
		d, err := AllPairsDistances(g, w)
		if err != nil {
			t.Fatal(err)
		}
		for trip := 0; trip < 50; trip++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if d[a][c] > d[a][b]+d[b][c]+1e-9 {
				t.Fatalf("triangle violated: d(%d,%d)=%g > %g+%g", a, c, d[a][c], d[a][b], d[b][c])
			}
		}
	}
}

func TestShortestPathTreeIsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(30)
		g := ConnectedErdosRenyi(n, 0.25, rng)
		w := UniformRandomWeights(g, 0.1, 4, rng)
		tree, err := Dijkstra(g, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v < n; v++ {
			path, ok := tree.PathTo(v)
			if !ok {
				t.Fatalf("unreachable vertex %d in connected graph", v)
			}
			if err := g.ValidatePath(0, v, path); err != nil {
				t.Fatal(err)
			}
			if math.Abs(PathWeight(w, path)-tree.Dist[v]) > 1e-9 {
				t.Fatalf("path weight %g != Dist %g", PathWeight(w, path), tree.Dist[v])
			}
			if tree.Hops(v) != len(path) {
				t.Fatalf("Hops %d != len(path) %d", tree.Hops(v), len(path))
			}
		}
	}
}

func TestDistanceAndShortestPathHelpers(t *testing.T) {
	g := Path(4)
	w := []float64{1, 1, 1}
	d, err := Distance(g, w, 0, 3)
	if err != nil || d != 3 {
		t.Fatalf("Distance = %g, %v", d, err)
	}
	path, wt, ok, err := ShortestPath(g, w, 3, 0)
	if err != nil || !ok || wt != 3 || len(path) != 3 {
		t.Fatalf("ShortestPath = %v %g %v %v", path, wt, ok, err)
	}
	g2 := New(2)
	_, _, ok, err = ShortestPath(g2, nil, 0, 1)
	if err != nil || ok {
		t.Fatal("unreachable pair reported reachable")
	}
}

func TestFloydWarshallNegativeWeights(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	fw, err := FloydWarshall(g, []float64{2, -1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fw[0][2] != 1 {
		t.Fatalf("fw[0][2] = %g, want 1 (through the negative edge)", fw[0][2])
	}
}

func TestFloydWarshallNegativeCycle(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, err := FloydWarshall(g, []float64{-1, -1}); !errors.Is(err, ErrNegativeCycle) {
		t.Errorf("err = %v", err)
	}
}

func TestPathToSourceIsEmpty(t *testing.T) {
	g := Path(3)
	tree, err := Dijkstra(g, []float64{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	path, ok := tree.PathTo(1)
	if !ok || path == nil || len(path) != 0 {
		t.Fatalf("PathTo(source) = %v, %v", path, ok)
	}
}

func BenchmarkDijkstraGrid64(b *testing.B) {
	g := Grid(64)
	rng := rand.New(rand.NewSource(1))
	w := UniformRandomWeights(g, 0, 10, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Dijkstra(g, w, i%g.N()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloydWarshall128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := ConnectedErdosRenyi(128, 0.1, rng)
	w := UniformRandomWeights(g, 0, 10, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FloydWarshall(g, w); err != nil {
			b.Fatal(err)
		}
	}
}
