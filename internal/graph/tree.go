package graph

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// Tree is a rooted view of a graph whose underlying undirected topology is
// a tree. It precomputes the parent, depth, preorder and subtree sizes
// used by Algorithm 1 (rooted tree distances) and the LCA structure used
// by the all-pairs reduction of Theorem 4.2.
type Tree struct {
	G    *Graph
	Root int

	Parent     []int // Parent[v]; -1 at the root
	ParentEdge []int // edge ID from Parent[v] to v; -1 at the root
	Depth      []int // hop depth from the root
	Order      []int // preorder traversal of all vertices
	Size       []int // Size[v] = number of vertices in v's subtree

	children [][]Half // children adjacency (edge ID + child vertex)
}

// NewTree roots the tree graph g at root. The graph must be undirected,
// connected, and have exactly N-1 edges.
func NewTree(g *Graph, root int) (*Tree, error) {
	if g.Directed() {
		return nil, errors.New("graph: NewTree requires an undirected graph")
	}
	n := g.N()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("graph: NewTree root %d out of range [0, %d)", root, n)
	}
	if g.M() != n-1 {
		return nil, fmt.Errorf("graph: NewTree: %d edges on %d vertices is not a tree", g.M(), n)
	}
	t := &Tree{
		G:          g,
		Root:       root,
		Parent:     make([]int, n),
		ParentEdge: make([]int, n),
		Depth:      make([]int, n),
		Size:       make([]int, n),
		children:   make([][]Half, n),
	}
	for i := 0; i < n; i++ {
		t.Parent[i] = -1
		t.ParentEdge[i] = -1
	}
	// Iterative DFS to assign parents and preorder.
	visited := make([]bool, n)
	visited[root] = true
	stack := []int{root}
	t.Order = make([]int, 0, n)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.Order = append(t.Order, v)
		for _, h := range g.Adj(v) {
			if visited[h.To] {
				continue
			}
			visited[h.To] = true
			t.Parent[h.To] = v
			t.ParentEdge[h.To] = h.Edge
			t.Depth[h.To] = t.Depth[v] + 1
			t.children[v] = append(t.children[v], h)
			stack = append(stack, h.To)
		}
	}
	if len(t.Order) != n {
		return nil, ErrDisconnected
	}
	// Subtree sizes in reverse preorder.
	for i := range t.Size {
		t.Size[i] = 1
	}
	for i := n - 1; i >= 1; i-- {
		v := t.Order[i]
		t.Size[t.Parent[v]] += t.Size[v]
	}
	return t, nil
}

// Children returns the child half-edges of v (edge ID plus child vertex).
// The caller must not modify the returned slice.
func (t *Tree) Children(v int) []Half { return t.children[v] }

// N returns the number of vertices.
func (t *Tree) N() int { return t.G.N() }

// Splitter returns the vertex v* of Algorithm 1: the unique vertex whose
// subtree contains more than N/2 vertices while the subtree of each of its
// children contains at most N/2 vertices. (Existence: descend from the
// root, always moving to a child with subtree size > N/2; uniqueness: such
// heavy children are unique since two disjoint subtrees cannot both exceed
// half the vertices.)
func (t *Tree) Splitter() int {
	half := t.N() // threshold: size*2 > N
	v := t.Root
	for {
		next := -1
		for _, h := range t.children[v] {
			if 2*t.Size[h.To] > half {
				next = h.To
				break
			}
		}
		if next == -1 {
			return v
		}
		v = next
	}
}

// SubtreeVertices returns the vertices of v's subtree in preorder.
func (t *Tree) SubtreeVertices(v int) []int {
	out := make([]int, 0, t.Size[v])
	stack := []int{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, u)
		for _, h := range t.children[u] {
			stack = append(stack, h.To)
		}
	}
	return out
}

// PathFromRoot returns the edge-ID path from the root down to v.
func (t *Tree) PathFromRoot(v int) []int {
	var rev []int
	for v != t.Root {
		rev = append(rev, t.ParentEdge[v])
		v = t.Parent[v]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// RootDistances returns the weighted distance from the root to every
// vertex, computed in one preorder pass (exact, non-private).
func (t *Tree) RootDistances(w []float64) []float64 {
	if len(w) != t.G.M() {
		panic("graph: RootDistances weight vector has wrong length")
	}
	d := make([]float64, t.N())
	for _, v := range t.Order {
		if v == t.Root {
			continue
		}
		d[v] = d[t.Parent[v]] + w[t.ParentEdge[v]]
	}
	return d
}

// TreePath returns the unique tree path between x and y as edge IDs,
// ordered from x to y.
func (t *Tree) TreePath(x, y int) []int {
	// Climb both to equal depth, then together.
	var up, down []int
	a, b := x, y
	for t.Depth[a] > t.Depth[b] {
		up = append(up, t.ParentEdge[a])
		a = t.Parent[a]
	}
	for t.Depth[b] > t.Depth[a] {
		down = append(down, t.ParentEdge[b])
		b = t.Parent[b]
	}
	for a != b {
		up = append(up, t.ParentEdge[a])
		down = append(down, t.ParentEdge[b])
		a = t.Parent[a]
		b = t.Parent[b]
	}
	for i, j := 0, len(down)-1; i < j; i, j = i+1, j-1 {
		down[i], down[j] = down[j], down[i]
	}
	return append(up, down...)
}

// TreeDistance returns the weighted distance between x and y along the
// unique tree path.
func (t *Tree) TreeDistance(w []float64, x, y int) float64 {
	return PathWeight(w, t.TreePath(x, y))
}

// LCA is a lowest-common-ancestor oracle. Find runs in O(1) per query
// after O(N log N) preprocessing: the tree is flattened into an Euler
// tour, where the LCA of x and y is the minimum-depth vertex between
// their first occurrences, and that range-minimum query is answered
// from a sparse table of doubling-width windows. (The historical
// implementation answered Find by binary lifting in O(log N); the
// release-once/query-many tree oracles run Find on every distance
// query, so the constant-time tour lookup is the serving hot path.)
// An ancestor table by binary lifting is built lazily for Ancestor,
// so Find-only consumers (the release-once/query-many tree oracles)
// never pay for it.
type LCA struct {
	tree *Tree

	euler []int32   // vertex at each tour position (2N-1 entries)
	first []int32   // first tour position of each vertex
	table [][]int32 // table[k][i] = argmin-depth position in [i, i+2^k)
	logs  []uint8   // logs[w] = floor(log2 w), for window sizing

	upOnce sync.Once
	up     [][]int // up[k][v] = 2^k-th ancestor of v, or root
}

// NewLCA builds the Euler tour and its sparse range-minimum table for t.
func NewLCA(t *Tree) *LCA {
	l := &LCA{tree: t}
	l.buildTour()
	return l
}

// lifting returns the binary-lifting ancestor table, building it on
// first use (goroutine-safe).
func (l *LCA) lifting() [][]int {
	l.upOnce.Do(func() {
		t := l.tree
		n := t.N()
		levels := 1
		if n > 1 {
			levels = bits.Len(uint(n-1)) + 1
		}
		up := make([][]int, levels)
		up[0] = make([]int, n)
		for v := 0; v < n; v++ {
			if t.Parent[v] >= 0 {
				up[0][v] = t.Parent[v]
			} else {
				up[0][v] = v
			}
		}
		for k := 1; k < levels; k++ {
			up[k] = make([]int, n)
			for v := 0; v < n; v++ {
				up[k][v] = up[k-1][up[k-1][v]]
			}
		}
		l.up = up
	})
	return l.up
}

// buildTour flattens the tree into an Euler tour (each vertex appears
// once on entry and once more after each child returns) and tabulates
// range-minimum-by-depth over it.
func (l *LCA) buildTour() {
	t := l.tree
	n := t.N()
	tourLen := 2*n - 1
	l.euler = make([]int32, 0, tourLen)
	l.first = make([]int32, n)
	for i := range l.first {
		l.first[i] = -1
	}
	// Iterative DFS: frame (vertex, next child index); the vertex is
	// appended on entry and again after each child's subtree.
	type frame struct {
		v    int32
		next int32
	}
	stack := make([]frame, 1, 64)
	stack[0] = frame{v: int32(t.Root)}
	l.push(int32(t.Root))
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := t.children[f.v]
		if int(f.next) >= len(kids) {
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				l.push(stack[len(stack)-1].v)
			}
			continue
		}
		c := int32(kids[f.next].To)
		f.next++
		stack = append(stack, frame{v: c})
		l.push(c)
	}

	// logs[w] = floor(log2 w) for every window width up to the tour.
	l.logs = make([]uint8, tourLen+1)
	for w := 2; w <= tourLen; w++ {
		l.logs[w] = l.logs[w/2] + 1
	}
	// table[0] is the tour itself; each level halves the window count.
	rows := int(l.logs[tourLen]) + 1
	l.table = make([][]int32, rows)
	base := make([]int32, tourLen)
	for i := range base {
		base[i] = int32(i)
	}
	l.table[0] = base
	depth := t.Depth
	for k := 1; k < rows; k++ {
		width := 1 << k
		prev := l.table[k-1]
		row := make([]int32, tourLen-width+1)
		for i := range row {
			a, b := prev[i], prev[i+width/2]
			if depth[l.euler[b]] < depth[l.euler[a]] {
				a = b
			}
			row[i] = a
		}
		l.table[k] = row
	}
}

// push appends v to the tour, recording its first occurrence.
func (l *LCA) push(v int32) {
	if l.first[v] == -1 {
		l.first[v] = int32(len(l.euler))
	}
	l.euler = append(l.euler, v)
}

// Ancestor returns the d-th ancestor of v (clamped at the root).
func (l *LCA) Ancestor(v, d int) int {
	up := l.lifting()
	if d > l.tree.Depth[v] {
		d = l.tree.Depth[v]
	}
	for k := 0; d > 0 && k < len(up); k++ {
		if d&1 == 1 {
			v = up[k][v]
		}
		d >>= 1
	}
	return v
}

// Find returns the lowest common ancestor of x and y in O(1): the
// minimum-depth tour vertex between their first occurrences, read from
// two overlapping sparse-table windows.
func (l *LCA) Find(x, y int) int {
	lo, hi := l.first[x], l.first[y]
	if lo > hi {
		lo, hi = hi, lo
	}
	k := l.logs[hi-lo+1]
	a := l.table[k][lo]
	b := l.table[k][hi+1-(int32(1)<<k)]
	depth := l.tree.Depth
	if depth[l.euler[b]] < depth[l.euler[a]] {
		a = b
	}
	return int(l.euler[a])
}

// ExtractSubtree materializes the subtree of t rooted at r (over original
// vertex IDs given by keep, which must be exactly the vertex set of a
// connected subtree containing r) as a standalone tree graph with dense
// vertex IDs. It returns the new graph, the new root index, a map from new
// vertex index to original vertex ID, and a map from new edge ID to
// original edge ID.
func ExtractSubtree(t *Tree, r int, keep []int) (sub *Graph, subRoot int, vertOrig []int, edgeOrig []int) {
	index := make(map[int]int, len(keep))
	vertOrig = make([]int, len(keep))
	for i, v := range keep {
		index[v] = i
		vertOrig[i] = v
	}
	sub = New(len(keep))
	for _, v := range keep {
		if v == r {
			continue
		}
		p := t.Parent[v]
		pi, ok := index[p]
		if !ok {
			// v's parent is outside the kept set; v must be the root.
			panic(fmt.Sprintf("graph: ExtractSubtree: vertex %d has parent %d outside subtree and is not root %d", v, p, r))
		}
		sub.AddEdge(pi, index[v])
		edgeOrig = append(edgeOrig, t.ParentEdge[v])
	}
	return sub, index[r], vertOrig, edgeOrig
}
