package graph

import (
	"math"
	"math/rand"
	"testing"
)

func testTrees(rng *rand.Rand) []*Graph {
	return []*Graph{
		Path(1),
		Path(2),
		Path(17),
		Star(9),
		BalancedBinaryTree(31),
		BalancedBinaryTree(100),
		Caterpillar(10, 23),
		RandomTree(64, rng),
		RandomPruferTree(50, rng),
	}
}

func TestNewTreeRejectsNonTrees(t *testing.T) {
	if _, err := NewTree(Cycle(4), 0); err == nil {
		t.Error("cycle accepted as tree")
	}
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(2, 3) // 3 edges on 4 vertices but disconnected
	if _, err := NewTree(g, 0); err == nil {
		t.Error("disconnected multigraph accepted as tree")
	}
	if _, err := NewTree(NewDirected(1), 0); err == nil {
		t.Error("directed graph accepted")
	}
	if _, err := NewTree(Path(3), 7); err == nil {
		t.Error("out-of-range root accepted")
	}
}

func TestTreeStructureInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, g := range testTrees(rng) {
		n := g.N()
		root := rng.Intn(n)
		tr, err := NewTree(g, root)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Parent[root] != -1 || tr.ParentEdge[root] != -1 || tr.Depth[root] != 0 {
			t.Error("root fields wrong")
		}
		if len(tr.Order) != n || tr.Order[0] != root {
			t.Error("preorder wrong")
		}
		if tr.Size[root] != n {
			t.Errorf("root subtree size %d != %d", tr.Size[root], n)
		}
		sizeSum := 0
		for v := 0; v < n; v++ {
			if v != root {
				if tr.Depth[v] != tr.Depth[tr.Parent[v]]+1 {
					t.Error("depth not parent depth + 1")
				}
				e := g.Edge(tr.ParentEdge[v])
				if !((e.From == v && e.To == tr.Parent[v]) || (e.To == v && e.From == tr.Parent[v])) {
					t.Error("ParentEdge does not join v and Parent[v]")
				}
			}
			// Size[v] = 1 + sum of child sizes.
			s := 1
			for _, h := range tr.Children(v) {
				s += tr.Size[h.To]
			}
			if s != tr.Size[v] {
				t.Errorf("Size[%d] = %d, want %d", v, tr.Size[v], s)
			}
			sizeSum += len(tr.Children(v))
		}
		if sizeSum != n-1 {
			t.Errorf("total children %d != n-1", sizeSum)
		}
	}
}

func TestSplitterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range testTrees(rng) {
		n := g.N()
		tr, err := NewTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		v := tr.Splitter()
		if 2*tr.Size[v] <= n {
			t.Errorf("n=%d: splitter subtree size %d not > n/2", n, tr.Size[v])
		}
		for _, h := range tr.Children(v) {
			if 2*tr.Size[h.To] > n {
				t.Errorf("n=%d: splitter child subtree size %d > n/2", n, tr.Size[h.To])
			}
		}
	}
}

func TestSplitterPartsAtMostHalf(t *testing.T) {
	// The Algorithm 1 recursion property: each child part has at most
	// floor(n/2) vertices and T0 at most ceil(n/2). Ceil-halving still
	// reaches size 1 within ceil(log2 n) levels, which is the Levels bound
	// TreeSingleSource uses for sensitivity.
	rng := rand.New(rand.NewSource(8))
	for _, g := range testTrees(rng) {
		n := g.N()
		if n < 2 {
			continue
		}
		tr, err := NewTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		v := tr.Splitter()
		childTotal := 0
		for _, h := range tr.Children(v) {
			sz := tr.Size[h.To]
			childTotal += sz
			if 2*sz > n {
				t.Errorf("child part %d > n/2 (n=%d)", sz, n)
			}
		}
		t0 := n - childTotal
		if t0 > (n+1)/2 {
			t.Errorf("T0 part %d > ceil(n/2) (n=%d)", t0, n)
		}
	}
}

func TestCeilHalvingDepth(t *testing.T) {
	// The recursion-depth identity behind the Levels bound: iterating
	// n -> ceil(n/2) reaches 1 in exactly ceil(log2 n) steps.
	for n := 2; n <= 1<<14; n++ {
		steps := 0
		for m := n; m > 1; m = (m + 1) / 2 {
			steps++
		}
		want := 0
		for (1 << want) < n {
			want++
		}
		if steps != want {
			t.Fatalf("n=%d: ceil-halving depth %d != ceil(log2 n) %d", n, steps, want)
		}
	}
}

func TestSubtreeVertices(t *testing.T) {
	g := BalancedBinaryTree(7)
	tr, err := NewTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	vs := tr.SubtreeVertices(1) // subtree {1, 3, 4}
	if len(vs) != 3 {
		t.Fatalf("subtree size %d", len(vs))
	}
	seen := map[int]bool{}
	for _, v := range vs {
		seen[v] = true
	}
	if !seen[1] || !seen[3] || !seen[4] {
		t.Errorf("subtree vertices %v", vs)
	}
}

func TestTreePathAndDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, g := range testTrees(rng) {
		n := g.N()
		if n < 2 {
			continue
		}
		tr, err := NewTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		w := UniformRandomWeights(g, 0.1, 5, rng)
		for trial := 0; trial < 20; trial++ {
			x, y := rng.Intn(n), rng.Intn(n)
			path := tr.TreePath(x, y)
			if err := g.ValidatePath(x, y, path); err != nil {
				t.Fatalf("TreePath invalid: %v", err)
			}
			exact, err := Distance(g, w, x, y)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(tr.TreeDistance(w, x, y)-exact) > 1e-9 {
				t.Fatalf("TreeDistance %g != Dijkstra %g", tr.TreeDistance(w, x, y), exact)
			}
		}
	}
}

func TestPathFromRoot(t *testing.T) {
	g := Path(5)
	tr, err := NewTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := tr.PathFromRoot(4)
	if len(p) != 4 {
		t.Fatalf("path length %d", len(p))
	}
	if err := g.ValidatePath(0, 4, p); err != nil {
		t.Error(err)
	}
	if len(tr.PathFromRoot(0)) != 0 {
		t.Error("root path not empty")
	}
}

func TestRootDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := RandomTree(40, rng)
	w := UniformRandomWeights(g, 0, 8, rng)
	tr, err := NewTree(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := tr.RootDistances(w)
	tree, err := Dijkstra(g, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 40; v++ {
		if math.Abs(d[v]-tree.Dist[v]) > 1e-9 {
			t.Fatalf("RootDistances[%d] = %g, Dijkstra %g", v, d[v], tree.Dist[v])
		}
	}
}

func TestLCAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, g := range testTrees(rng) {
		n := g.N()
		tr, err := NewTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		lca := NewLCA(tr)
		naive := func(x, y int) int {
			seen := map[int]bool{}
			for v := x; ; v = tr.Parent[v] {
				seen[v] = true
				if v == tr.Root {
					break
				}
			}
			for v := y; ; v = tr.Parent[v] {
				if seen[v] {
					return v
				}
			}
		}
		for trial := 0; trial < 30; trial++ {
			x, y := rng.Intn(n), rng.Intn(n)
			if got, want := lca.Find(x, y), naive(x, y); got != want {
				t.Fatalf("n=%d: LCA(%d,%d) = %d, want %d", n, x, y, got, want)
			}
		}
	}
}

func TestLCAAncestor(t *testing.T) {
	g := Path(8)
	tr, err := NewTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	lca := NewLCA(tr)
	if got := lca.Ancestor(7, 3); got != 4 {
		t.Errorf("Ancestor(7,3) = %d", got)
	}
	if got := lca.Ancestor(7, 100); got != 0 {
		t.Errorf("Ancestor clamp = %d", got)
	}
	if got := lca.Ancestor(3, 0); got != 3 {
		t.Errorf("Ancestor(3,0) = %d", got)
	}
}

func TestLCAIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := RandomPruferTree(60, rng)
	tr, err := NewTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	lca := NewLCA(tr)
	w := UniformRandomWeights(g, 0.5, 2, rng)
	rootDist := tr.RootDistances(w)
	for trial := 0; trial < 60; trial++ {
		x, y := rng.Intn(60), rng.Intn(60)
		z := lca.Find(x, y)
		// d(x,y) = d(r,x) + d(r,y) - 2 d(r,z): the Theorem 4.2 identity.
		want := tr.TreeDistance(w, x, y)
		got := rootDist[x] + rootDist[y] - 2*rootDist[z]
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("LCA identity: %g != %g", got, want)
		}
		if lca.Find(x, x) != x {
			t.Fatal("LCA(x,x) != x")
		}
		if lca.Find(tr.Root, x) != tr.Root {
			t.Fatal("LCA(root,x) != root")
		}
	}
}

// TestLCAEulerTour checks the invariants of the O(1)-query structure:
// the tour has exactly 2N-1 entries, consecutive entries are tree
// neighbors, every vertex has a first occurrence, and Find agrees with
// the depth-minimum over the tour range it reads — including the
// degenerate one- and two-vertex trees.
func TestLCAEulerTour(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	trees := []*Graph{New(1), Path(2), Path(9), Star(7), BalancedBinaryTree(31), RandomPruferTree(64, rng)}
	for _, g := range trees {
		n := g.N()
		tr, err := NewTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		lca := NewLCA(tr)
		if got, want := len(lca.euler), 2*n-1; got != want {
			t.Fatalf("n=%d: tour has %d entries, want %d", n, got, want)
		}
		for i := 1; i < len(lca.euler); i++ {
			a, b := int(lca.euler[i-1]), int(lca.euler[i])
			if tr.Parent[a] != b && tr.Parent[b] != a {
				t.Fatalf("n=%d: tour step %d joins non-adjacent %d and %d", n, i, a, b)
			}
		}
		for v := 0; v < n; v++ {
			if lca.first[v] < 0 || int(lca.euler[lca.first[v]]) != v {
				t.Fatalf("n=%d: first[%d] = %d is not an occurrence of %d", n, v, lca.first[v], v)
			}
		}
		for trial := 0; trial < 50; trial++ {
			x, y := rng.Intn(n), rng.Intn(n)
			lo, hi := lca.first[x], lca.first[y]
			if lo > hi {
				lo, hi = hi, lo
			}
			want, wd := -1, n+1
			for i := lo; i <= hi; i++ {
				if v := int(lca.euler[i]); tr.Depth[v] < wd {
					want, wd = v, tr.Depth[v]
				}
			}
			if got := lca.Find(x, y); got != want {
				t.Fatalf("n=%d: Find(%d,%d) = %d, tour minimum %d", n, x, y, got, want)
			}
		}
	}
}

func TestExtractSubtree(t *testing.T) {
	g := BalancedBinaryTree(15)
	tr, err := NewTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	keep := tr.SubtreeVertices(1)
	sub, subRoot, vertOrig, edgeOrig := ExtractSubtree(tr, 1, keep)
	if sub.N() != len(keep) || sub.M() != len(keep)-1 {
		t.Fatalf("subtree dims %d/%d", sub.N(), sub.M())
	}
	if vertOrig[subRoot] != 1 {
		t.Errorf("subRoot maps to %d", vertOrig[subRoot])
	}
	if _, err := NewTree(sub, subRoot); err != nil {
		t.Errorf("extracted subtree is not a tree: %v", err)
	}
	// Every extracted edge exists in the original between mapped endpoints.
	for newID, origID := range edgeOrig {
		ne := sub.Edge(newID)
		oe := g.Edge(origID)
		a, b := vertOrig[ne.From], vertOrig[ne.To]
		if !((oe.From == a && oe.To == b) || (oe.From == b && oe.To == a)) {
			t.Errorf("edge mapping broken: new %v -> orig %v", ne, oe)
		}
	}
}

func TestExtractSubtreeT0Shape(t *testing.T) {
	// Extract "everything except subtree(1)" rooted at the original root,
	// the T0 shape of Algorithm 1.
	g := BalancedBinaryTree(15)
	tr, err := NewTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	inSub := map[int]bool{}
	for _, v := range tr.SubtreeVertices(1) {
		inSub[v] = true
	}
	var keep []int
	for v := 0; v < 15; v++ {
		if !inSub[v] {
			keep = append(keep, v)
		}
	}
	sub, subRoot, vertOrig, _ := ExtractSubtree(tr, 0, keep)
	if vertOrig[subRoot] != 0 {
		t.Error("wrong root")
	}
	if _, err := NewTree(sub, subRoot); err != nil {
		t.Errorf("T0 not a tree: %v", err)
	}
}
