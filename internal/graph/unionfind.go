package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression, used by Kruskal's algorithm and the k-covering verifier.
type UnionFind struct {
	parent []int
	rank   []int
	count  int
}

// NewUnionFind returns a disjoint-set structure over n singleton elements.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// occurred (false if they were already in the same set).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool {
	return uf.Find(x) == uf.Find(y)
}

// Count returns the current number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }
