package graph

import (
	"math/rand"
	"testing"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatal("initial count")
	}
	if !uf.Union(0, 1) {
		t.Error("first union returned false")
	}
	if uf.Union(1, 0) {
		t.Error("repeat union returned true")
	}
	if !uf.Connected(0, 1) || uf.Connected(0, 2) {
		t.Error("connectivity wrong")
	}
	if uf.Count() != 4 {
		t.Errorf("count = %d", uf.Count())
	}
}

func TestUnionFindTransitivity(t *testing.T) {
	uf := NewUnionFind(6)
	uf.Union(0, 1)
	uf.Union(2, 3)
	uf.Union(1, 2)
	if !uf.Connected(0, 3) {
		t.Error("transitivity broken")
	}
	if uf.Connected(0, 4) {
		t.Error("phantom connection")
	}
}

// Property: union-find agrees with a brute-force partition under a random
// operation sequence.
func TestUnionFindAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		uf := NewUnionFind(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for op := 0; op < 80; op++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				merged := uf.Union(a, b)
				if merged != (label[a] != label[b]) {
					t.Fatal("Union return value wrong")
				}
				relabel(label[a], label[b])
			} else if uf.Connected(a, b) != (label[a] == label[b]) {
				t.Fatal("Connected disagrees with brute force")
			}
		}
		distinct := map[int]bool{}
		for _, l := range label {
			distinct[l] = true
		}
		if uf.Count() != len(distinct) {
			t.Fatalf("Count %d != %d", uf.Count(), len(distinct))
		}
	}
}
