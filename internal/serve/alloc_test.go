//go:build !race

package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// The zero-allocation tests pin ISSUE 8's tentpole claim at its
// strongest: the point and small-batch handlers allocate nothing on
// the steady-state hot path. They invoke the handlers directly (mux
// routing and httptest recorders allocate inside the standard library,
// which is not ours to fix) with a reusable ResponseWriter and a
// replayable body. Build-tagged !race because the race runtime adds
// its own allocations.

// nullWriter is a reusable allocation-free http.ResponseWriter: the
// header map persists across runs (so the shared Content-Type value is
// installed once) and writes are counted, not stored.
type nullWriter struct {
	h    http.Header
	code int
	n    int
}

func newNullWriter() *nullWriter { return &nullWriter{h: make(http.Header)} }

func (w *nullWriter) Header() http.Header { return w.h }

func (w *nullWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

func (w *nullWriter) WriteHeader(code int) { w.code = code }

func (w *nullWriter) reset() { w.code, w.n = 0, 0 }

// replayBody is a rewindable request body.
type replayBody struct {
	data []byte
	off  int
}

func (b *replayBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *replayBody) Close() error { return nil }

func (b *replayBody) rewind() { b.off = 0 }

// allocServer builds a server with one ready hub-labeled release and
// returns it with the release name pre-set on req path values.
func allocServer(t *testing.T) *Server {
	t.Helper()
	s, ts := newTestServer(t, Config{})
	createRelease(t, ts, `{"name":"main","mechanism":"release","epsilon":2,"seed":7,"index":"hl"}`)
	return s
}

func requireZeroAllocs(t *testing.T, what string, f func()) {
	t.Helper()
	for i := 0; i < 8; i++ {
		f() // warm the pools, caches, and lazy envelope chunks
	}
	if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", what, allocs)
	}
}

// TestServeDistanceZeroAlloc: steady-state GET and POST point queries
// allocate nothing in our handler path.
func TestServeDistanceZeroAlloc(t *testing.T) {
	s := allocServer(t)

	getReq := httptest.NewRequest(http.MethodGet, "/v1/releases/main/distance?s=0&t=15", nil)
	getReq.SetPathValue("name", "main")
	w := newNullWriter()
	requireZeroAllocs(t, "GET /distance", func() {
		w.reset()
		s.handleDistance(w, getReq)
		if w.code != http.StatusOK || w.n == 0 {
			t.Fatalf("GET answered %d with %d bytes", w.code, w.n)
		}
	})

	body := &replayBody{data: []byte(`{"s":0,"t":15}`)}
	postReq := httptest.NewRequest(http.MethodPost, "/v1/releases/main/distance", body)
	postReq.SetPathValue("name", "main")
	requireZeroAllocs(t, "POST /distance", func() {
		w.reset()
		body.rewind()
		s.handleDistance(w, postReq)
		if w.code != http.StatusOK || w.n == 0 {
			t.Fatalf("POST answered %d with %d bytes", w.code, w.n)
		}
	})
}

// TestServeDistancesZeroAlloc: the steady-state batch handler — text
// and JSON tuple bodies — allocates nothing in our code.
func TestServeDistancesZeroAlloc(t *testing.T) {
	s := allocServer(t)

	for _, tc := range []struct {
		name string
		body string
	}{
		{"text", "0 15\n1 2\n3 3\n15 0\n"},
		{"tuples", "[[0,15],[1,2],[3,3],[15,0]]"},
	} {
		body := &replayBody{data: []byte(tc.body)}
		req := httptest.NewRequest(http.MethodPost, "/v1/releases/main/distances", body)
		req.SetPathValue("name", "main")
		w := newNullWriter()
		requireZeroAllocs(t, "POST /distances "+tc.name, func() {
			w.reset()
			body.rewind()
			s.handleDistances(w, req)
			if w.code != http.StatusOK || w.n == 0 {
				t.Fatalf("batch %s answered %d with %d bytes", tc.name, w.code, w.n)
			}
		})
	}
}
