package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/dpgraph"
)

// benchServer materializes one seeded release over a Grid(side) and
// returns the handler plus the direct oracle for the overhead
// comparison.
func benchServer(b *testing.B, side int, index string) (http.Handler, dpgraph.DistanceOracle, int) {
	b.Helper()
	g := dpgraph.Grid(side)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + float64(i%7)
	}
	spec := dpgraph.ReleaseSpec{Mechanism: "release", Seed: 42, Index: index}
	oracle, _, err := spec.Materialize(g, dpgraph.PrivateWeights(w))
	if err != nil {
		b.Fatal(err)
	}
	s := New(g, w, Config{})
	rel, err := s.reg.reserve("bench", spec, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Serve the exact oracle being measured directly, so the two
	// sub-benchmarks differ only by the HTTP layer.
	rel.oracle, rel.result = oracle, stubResult{}
	close(rel.ready)
	return s.Handler(), oracle, g.N()
}

// BenchmarkServeDistance compares a point distance query answered
// through the HTTP handler (request parse + admission + JSON response)
// against the same oracle called directly, once per index mode so the
// benchmark report distinguishes unindexed, CH, and hub-label serving.
// The direct/http gap on the unindexed oracle is the serving overhead
// scripts/check_perf_guards.sh gate #5 bounds.
func BenchmarkServeDistance(b *testing.B) {
	const side = 60 // 3,600 vertices: a query costs enough to dominate transport
	for _, mode := range []string{"off", "ch", "hl"} {
		b.Run(mode, func(b *testing.B) {
			handler, oracle, n := benchServer(b, side, mode)

			pairs := make([][2]int, 64)
			for i := range pairs {
				pairs[i] = [2]int{(i * 131) % n, (i*257 + n/2) % n}
			}

			b.Run("direct", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := pairs[i%len(pairs)]
					if _, err := oracle.Distance(p[0], p[1]); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("http", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := pairs[i%len(pairs)]
					req := httptest.NewRequest("GET", fmt.Sprintf("/v1/releases/bench/distance?s=%d&t=%d", p[0], p[1]), nil)
					rec := httptest.NewRecorder()
					handler.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("status %d: %s", rec.Code, rec.Body)
					}
				}
			})
		})
	}
}

// BenchmarkServeDistanceCoalesced pits concurrent same-source point
// queries against a CH-indexed release with the sweep coalescer off and
// on. The parallelism is forced well past GOMAXPROCS so the coalescer
// has waiters to merge even on a single-core runner; the "pairs/batch"
// and "shared-frac" metrics report how much sharing it achieved, which
// scripts/bench_snapshot.sh records alongside the ns/op.
func BenchmarkServeDistanceCoalesced(b *testing.B) {
	const side = 60
	g := dpgraph.Grid(side)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + float64(i%7)
	}
	spec := dpgraph.ReleaseSpec{Mechanism: "release", Seed: 42, Index: "ch"}
	oracle, result, err := spec.Materialize(g, dpgraph.PrivateWeights(w))
	if err != nil {
		b.Fatal(err)
	}
	n := g.N()
	for _, co := range []bool{false, true} {
		name := "off"
		if co {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var cfg Config
			if co {
				cfg = Config{CoalesceWindow: 200 * time.Microsecond, CoalesceMaxPending: 64}
			}
			s := New(g, w, cfg)
			rel, err := s.reg.reserve("bench", spec, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			s.publish(rel, oracle, result, nil)
			handler := s.Handler()

			b.SetParallelism(32) // force waiters to overlap even on one core
			b.ReportAllocs()
			b.ResetTimer()
			var seq atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					t := int(seq.Add(1)) % n
					req := httptest.NewRequest("GET", fmt.Sprintf("/v1/releases/bench/distance?s=0&t=%d", t), nil)
					rec := httptest.NewRecorder()
					handler.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("status %d: %s", rec.Code, rec.Body)
					}
				}
			})
			b.StopTimer()
			if co {
				m := &rel.metrics
				total := m.coalesceShared.Load() + m.coalesceSolo.Load()
				if batches := m.coalesceBatches.Load(); batches > 0 && total > 0 {
					b.ReportMetric(float64(total)/float64(batches), "pairs/batch")
					b.ReportMetric(float64(m.coalesceShared.Load())/float64(total), "shared-frac")
				}
			}
		})
	}
}

// BenchmarkServeBatch measures the batch endpoint's per-pair cost with
// a 256-pair body, the shape a throughput-oriented client sends.
func BenchmarkServeBatch(b *testing.B) {
	handler, _, n := benchServer(b, 60, "")
	var body strings.Builder
	body.WriteString("[")
	for i := 0; i < 256; i++ {
		if i > 0 {
			body.WriteString(",")
		}
		fmt.Fprintf(&body, "[%d,%d]", (i*131)%n, (i*257+n/2)%n)
	}
	body.WriteString("]")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/releases/bench/distances", strings.NewReader(body.String()))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}
