package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/dpgraph"
)

// DefaultCoalesceMaxPending flushes a shared batch once this many pairs
// are waiting, regardless of the window. It is sized a little above the
// CH sweep break-even on mid-size graphs so a full flush usually rides
// one PHAST pass.
const DefaultCoalesceMaxPending = 256

// coalesceSmallBatch is the largest client batch the coalescer will
// absorb into a shared sweep; bigger batches already amortize well on
// their own and would only add latency to co-batched point queries.
const coalesceSmallBatch = 16

// coalescer merges concurrent in-flight queries against one release
// into shared oracle batches. Submitters append their pairs to the
// current open batch; the batch runs when either the window elapses or
// maxPending pairs are waiting, whichever first. The oracle's own batch
// path then groups the merged pairs by source, so K point queries for
// the same source become one PHAST one-to-all sweep instead of K
// independent searches — and a lone query is never worse off than the
// window plus one direct query.
//
// Correctness note: every submitted pair must already be range-checked.
// The oracle's batch entry fails whole batches on the first invalid
// pair, so an unvalidated query could poison the answers of the
// strangers it shares a batch with.
type coalescer struct {
	answer     func(pairs []dpgraph.VertexPair, out []float64) error
	window     time.Duration
	maxPending int
	metrics    *releaseMetrics

	mu      sync.Mutex
	cur     *cobatch
	stopped bool
}

// cobatch is one shared in-flight batch: the merged pairs, the answers
// (filled by whichever goroutine runs the batch), and the completion
// signal every submitter waits on.
type cobatch struct {
	pairs   []dpgraph.VertexPair
	vals    []float64
	waiters int
	err     error
	done    chan struct{}
	timer   *time.Timer
}

func newCoalescer(answer func([]dpgraph.VertexPair, []float64) error, window time.Duration, maxPending int, m *releaseMetrics) *coalescer {
	if maxPending <= 0 {
		maxPending = DefaultCoalesceMaxPending
	}
	return &coalescer{answer: answer, window: window, maxPending: maxPending, metrics: m}
}

// distance answers one point query through the shared batch.
func (c *coalescer) distance(s, t int) (float64, error) {
	var pair [1]dpgraph.VertexPair
	var val [1]float64
	pair[0] = dpgraph.VertexPair{S: s, T: t}
	if err := c.submit(pair[:], val[:]); err != nil {
		return 0, err
	}
	return val[0], nil
}

// submit appends pairs to the open batch, waits for it to run, and
// copies this caller's answers into out (len(out) == len(pairs)).
func (c *coalescer) submit(pairs []dpgraph.VertexPair, out []float64) error {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return c.answer(pairs, out)
	}
	b := c.cur
	if b == nil {
		b = &cobatch{done: make(chan struct{})}
		c.cur = b
		b.timer = time.AfterFunc(c.window, func() { c.flushTimer(b) })
	}
	lo := len(b.pairs)
	b.pairs = append(b.pairs, pairs...)
	b.waiters++
	full := len(b.pairs) >= c.maxPending
	if full {
		c.cur = nil // detach: later submitters open a fresh batch
	}
	c.mu.Unlock()
	if full {
		b.timer.Stop()
		c.run(b, &c.metrics.coalesceFull)
	}
	<-b.done
	if b.err != nil {
		return b.err
	}
	copy(out, b.vals[lo:lo+len(pairs)])
	return nil
}

// flushTimer is the window expiry: detach the batch if it is still the
// open one (the full path may have detached it already) and run it.
func (c *coalescer) flushTimer(b *cobatch) {
	c.mu.Lock()
	if c.cur != b {
		c.mu.Unlock()
		return
	}
	c.cur = nil
	c.mu.Unlock()
	c.run(b, &c.metrics.coalesceTimer)
}

// run answers a detached batch and wakes its waiters. Exactly one
// goroutine reaches run per batch (whoever detached it under the lock).
func (c *coalescer) run(b *cobatch, cause *atomic.Uint64) {
	b.vals = make([]float64, len(b.pairs))
	b.err = c.answer(b.pairs, b.vals)
	if m := c.metrics; m != nil {
		m.coalesceBatches.Add(1)
		cause.Add(1)
		if b.waiters > 1 {
			m.coalesceShared.Add(uint64(len(b.pairs)))
		} else {
			m.coalesceSolo.Add(uint64(len(b.pairs)))
		}
	}
	close(b.done)
}

// stop drains the coalescer: the pending batch (if any) runs
// immediately, and every later submit answers directly. Used when the
// release is deleted or the server shuts down so no waiter is stranded
// on a timer that raced the teardown.
func (c *coalescer) stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	b := c.cur
	c.cur = nil
	c.mu.Unlock()
	if b != nil {
		b.timer.Stop()
		c.run(b, &c.metrics.coalesceTimer)
	}
}
