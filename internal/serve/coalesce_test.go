package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/dpgraph"
)

// fakeAnswer computes a recognizable deterministic value per pair so
// coalescer tests can verify that every waiter got exactly its own
// answers back out of a shared batch.
func fakeAnswer(pairs []dpgraph.VertexPair, out []float64) error {
	for i, p := range pairs {
		out[i] = float64(p.S)*1e6 + float64(p.T)
	}
	return nil
}

// pendingPairs reports how many pairs sit in the open batch, for tests
// that need to observe the window without racing it.
func (c *coalescer) pendingPairs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return 0
	}
	return len(c.cur.pairs)
}

func waitPending(t *testing.T, c *coalescer, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.pendingPairs() != want {
		if time.Now().After(deadline) {
			t.Fatalf("batch never reached %d pending pairs (have %d)", want, c.pendingPairs())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeCoalesceEquivalence: under arbitrary concurrent mixes of
// point and small-batch submissions, every caller receives exactly the
// answers a direct oracle call would have produced. Runs under -race in
// CI, which also exercises the batch hand-off for data races.
func TestServeCoalesceEquivalence(t *testing.T) {
	f := func(seed int64, nWorkers, nQueries uint8) bool {
		m := &releaseMetrics{}
		c := newCoalescer(fakeAnswer, 200*time.Microsecond, 32, m)
		defer c.stop()
		workers := int(nWorkers%8) + 1
		queries := int(nQueries%16) + 1
		var wg sync.WaitGroup
		var bad atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)))
				for q := 0; q < queries; q++ {
					if rng.Intn(2) == 0 {
						s, tt := rng.Intn(100), rng.Intn(100)
						v, err := c.distance(s, tt)
						if err != nil || v != float64(s)*1e6+float64(tt) {
							bad.Add(1)
						}
						continue
					}
					k := rng.Intn(5) + 1
					pairs := make([]dpgraph.VertexPair, k)
					for i := range pairs {
						pairs[i] = dpgraph.VertexPair{S: rng.Intn(100), T: rng.Intn(100)}
					}
					out := make([]float64, k)
					if err := c.submit(pairs, out); err != nil {
						bad.Add(int64(k))
						continue
					}
					for i, p := range pairs {
						if out[i] != float64(p.S)*1e6+float64(p.T) {
							bad.Add(1)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		return bad.Load() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestServeCoalesceWindowExpiry: a lone query is answered by the timer
// flush after the window, counted as a solo batch.
func TestServeCoalesceWindowExpiry(t *testing.T) {
	m := &releaseMetrics{}
	c := newCoalescer(fakeAnswer, time.Millisecond, 1000, m)
	defer c.stop()
	v, err := c.distance(3, 4)
	if err != nil || v != 3e6+4 {
		t.Fatalf("distance = (%v, %v), want 3000004", v, err)
	}
	if got := m.coalesceTimer.Load(); got != 1 {
		t.Errorf("timer flushes = %d, want 1", got)
	}
	if got := m.coalesceFull.Load(); got != 0 {
		t.Errorf("full flushes = %d, want 0", got)
	}
	if solo, shared := m.coalesceSolo.Load(), m.coalesceShared.Load(); solo != 1 || shared != 0 {
		t.Errorf("solo/shared = %d/%d, want 1/0", solo, shared)
	}
}

// TestServeCoalesceFullFlush: hitting maxPending flushes immediately
// without waiting out the window, and the batch counts as shared.
func TestServeCoalesceFullFlush(t *testing.T) {
	m := &releaseMetrics{}
	c := newCoalescer(fakeAnswer, time.Hour, 8, m) // window long enough to never fire
	defer c.stop()

	firstDone := make(chan error, 1)
	go func() {
		pairs := make([]dpgraph.VertexPair, 7)
		out := make([]float64, 7)
		for i := range pairs {
			pairs[i] = dpgraph.VertexPair{S: 1, T: i}
		}
		if err := c.submit(pairs, out); err != nil {
			firstDone <- err
			return
		}
		for i := range out {
			if out[i] != 1e6+float64(i) {
				firstDone <- fmt.Errorf("out[%d] = %v", i, out[i])
				return
			}
		}
		firstDone <- nil
	}()
	waitPending(t, c, 7)

	// The 8th pair fills the batch: both callers return now, not in an hour.
	v, err := c.distance(2, 9)
	if err != nil || v != 2e6+9 {
		t.Fatalf("filling distance = (%v, %v)", v, err)
	}
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if got := m.coalesceFull.Load(); got != 1 {
		t.Errorf("full flushes = %d, want 1", got)
	}
	if got := m.coalesceTimer.Load(); got != 0 {
		t.Errorf("timer flushes = %d, want 0", got)
	}
	if got := m.coalesceShared.Load(); got != 8 {
		t.Errorf("shared queries = %d, want 8", got)
	}
	if got := m.coalesceBatches.Load(); got != 1 {
		t.Errorf("batches = %d, want 1", got)
	}
}

// TestServeCoalesceStop: stop() releases a parked waiter immediately
// and downgrades later submissions to direct answers.
func TestServeCoalesceStop(t *testing.T) {
	m := &releaseMetrics{}
	c := newCoalescer(fakeAnswer, time.Hour, 1000, m)

	res := make(chan error, 1)
	go func() {
		v, err := c.distance(5, 6)
		if err == nil && v != 5e6+6 {
			err = fmt.Errorf("v = %v", v)
		}
		res <- err
	}()
	waitPending(t, c, 1)
	c.stop()
	select {
	case err := <-res:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still parked after stop()")
	}
	if got := m.coalesceBatches.Load(); got != 1 {
		t.Errorf("batches = %d, want 1", got)
	}

	// After stop, queries answer directly: no new batch, no waiting.
	start := time.Now()
	v, err := c.distance(7, 8)
	if err != nil || v != 7e6+8 {
		t.Fatalf("post-stop distance = (%v, %v)", v, err)
	}
	if time.Since(start) > time.Minute/2 {
		t.Error("post-stop distance waited on a window")
	}
	if got := m.coalesceBatches.Load(); got != 1 {
		t.Errorf("batches after direct answer = %d, want still 1", got)
	}
	c.stop() // second stop is a no-op
}

// TestServeCoalesceErrorPropagates: an oracle failure reaches every
// waiter of the shared batch.
func TestServeCoalesceErrorPropagates(t *testing.T) {
	boom := errors.New("oracle down")
	m := &releaseMetrics{}
	c := newCoalescer(func([]dpgraph.VertexPair, []float64) error { return boom }, time.Millisecond, 2, m)
	defer c.stop()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.distance(0, 1); !errors.Is(err, boom) {
				t.Errorf("distance err = %v, want %v", err, boom)
			}
		}()
	}
	wg.Wait()
}

// TestServeCoalescedEndToEnd drives coalescing through real HTTP:
// concurrent point queries against a sweep-capable release produce the
// same answers as an opted-out twin of the same seeded spec, and the
// metrics attribute the traffic to coalesced batches.
func TestServeCoalescedEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceWindow: 2 * time.Millisecond, CoalesceMaxPending: 8})
	createRelease(t, ts, `{"name":"co","mechanism":"release","epsilon":2,"seed":7,"index":"ch"}`)
	createRelease(t, ts, `{"name":"plain","mechanism":"release","epsilon":2,"seed":7,"index":"ch","coalesce":false}`)

	const n = 16
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		status, data := get(t, fmt.Sprintf("%s/v1/releases/plain/distance?s=0&t=%d", ts.URL, i))
		if status != http.StatusOK {
			t.Fatalf("plain distance t=%d: status %d: %s", i, status, data)
		}
		var ans PairAnswer
		if err := json.Unmarshal(data, &ans); err != nil {
			t.Fatalf("plain distance t=%d: %v\n%s", i, err, data)
		}
		want[i] = ans.Value
	}

	var wg sync.WaitGroup
	got := make([]float64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/v1/releases/co/distance?s=0&t=%d", ts.URL, i))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			buf := new(bytes.Buffer)
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, buf.Bytes())
				return
			}
			var ans PairAnswer
			if err := json.Unmarshal(buf.Bytes(), &ans); err != nil {
				errs[i] = fmt.Errorf("%v: %s", err, buf.Bytes())
				return
			}
			got[i] = ans.Value
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("coalesced distance t=%d: %v", i, errs[i])
		}
		// Same seed, same spec: identical distances up to float summation
		// order (a coalesced answer may ride a sweep instead of a point
		// query, which can reorder the same path's additions).
		if diff := math.Abs(got[i] - want[i]); diff > 1e-9 && diff > 1e-9*math.Abs(want[i]) {
			t.Errorf("coalesced answer t=%d = %g, plain = %g", i, got[i], want[i])
		}
	}

	status, data := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	var metrics struct {
		Totals struct {
			CoalescedShared uint64 `json:"coalesced_shared"`
		} `json:"totals"`
		BufferPool struct {
			Gets uint64 `json:"gets"`
			News uint64 `json:"news"`
		} `json:"buffer_pool"`
		Releases map[string]metricsSnapshot `json:"releases"`
	}
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatalf("bad metrics: %v\n%s", err, data)
	}
	co := metrics.Releases["co"].Coalesce
	if co.Batches == 0 {
		t.Error("coalesced release ran zero batches")
	}
	if co.SharedQueries+co.SoloQueries != n {
		t.Errorf("shared+solo = %d+%d, want %d", co.SharedQueries, co.SoloQueries, n)
	}
	if plain := metrics.Releases["plain"].Coalesce; plain.Batches != 0 {
		t.Errorf("opted-out release ran %d coalesced batches, want 0", plain.Batches)
	}
	if metrics.BufferPool.Gets == 0 {
		t.Error("buffer pool saw no checkouts")
	}
}

// TestServeStreamEndpoint: the pipelined NDJSON endpoint answers each
// line byte-identically to the point endpoint, skips blanks and
// comments, and terminates with one error line on a malformed query.
func TestServeStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createRelease(t, ts, `{"name":"main","mechanism":"release","epsilon":2,"seed":7}`)

	queries := [][2]int{{0, 15}, {1, 2}, {3, 3}, {15, 0}}
	var want []string
	for _, q := range queries {
		status, data := get(t, fmt.Sprintf("%s/v1/releases/main/distance?s=%d&t=%d", ts.URL, q[0], q[1]))
		if status != http.StatusOK {
			t.Fatalf("point %v: status %d: %s", q, status, data)
		}
		want = append(want, string(data))
	}

	body := "0 15\n\n# comment\n1 2\n  3 3 \n15 0\n"
	resp, err := http.Post(ts.URL+"/v1/releases/main/distances:stream", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q, want application/x-ndjson", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(want) {
		t.Fatalf("stream answered %d lines, want %d: %q", len(lines), len(want), lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("stream line %d = %s, point answer = %s", i, lines[i], want[i])
		}
	}
}

// TestServeStreamBadLine: answers already queued are delivered before
// the error line, and the stream ends there.
func TestServeStreamBadLine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createRelease(t, ts, `{"name":"main","mechanism":"release","epsilon":2,"seed":7}`)

	for _, tc := range []struct {
		body        string
		wantAnswers int
	}{
		{"0 15\nbogus line\n1 2\n", 1}, // malformed second line
		{"0 99\n", 0},                  // out of range
		{"0 1 2\n", 0},                 // three fields
	} {
		resp, err := http.Post(ts.URL+"/v1/releases/main/distances:stream", "text/plain", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var lines []string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		resp.Body.Close()
		if len(lines) != tc.wantAnswers+1 {
			t.Fatalf("stream %q: %d lines, want %d answers + 1 error: %q", tc.body, len(lines), tc.wantAnswers, lines)
		}
		for i := 0; i < tc.wantAnswers; i++ {
			var ans PairAnswer
			if err := json.Unmarshal([]byte(lines[i]), &ans); err != nil {
				t.Errorf("stream %q line %d: not an answer: %s", tc.body, i, lines[i])
			}
		}
		var env errorEnvelope
		last := lines[len(lines)-1]
		if err := json.Unmarshal([]byte(last), &env); err != nil || env.Error == "" {
			t.Errorf("stream %q final line = %s, want an error envelope", tc.body, last)
		}
	}
}
