package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/dpgraph"
)

// This file is the allocation-free request path: pooled per-request
// workspaces, append-based encoders for the distance response shapes,
// and conservative fast parsers for the three query input forms (URL
// query string, point JSON body, batch pairs body). Every fast parser
// accepts only inputs it understands bit-for-bit identically to the
// reflection-based path and reports !ok otherwise, so handlers fall
// back to the encoding/json code for anything unusual — error messages
// and acceptance stay exactly as before, and only the hot shapes pay
// zero allocations.

// workspace carries one request's scratch buffers: the raw body, the
// decoded pairs, their answers, and the response bytes.
type workspace struct {
	body  []byte
	pairs []dpgraph.VertexPair
	vals  []float64
	buf   []byte
}

// maxPooledWorkspaceBytes caps the retained capacity of a pooled
// workspace so one huge batch does not pin its buffers forever.
const maxPooledWorkspaceBytes = 4 << 20

var (
	wsGets        atomic.Uint64
	wsNews        atomic.Uint64
	workspacePool = sync.Pool{New: func() any {
		wsNews.Add(1)
		return new(workspace)
	}}
)

func getWorkspace() *workspace {
	wsGets.Add(1)
	return workspacePool.Get().(*workspace)
}

func putWorkspace(ws *workspace) {
	retained := cap(ws.buf) + cap(ws.body) + 16*cap(ws.pairs) + 8*cap(ws.vals)
	if retained > maxPooledWorkspaceBytes {
		return
	}
	workspacePool.Put(ws)
}

// workspaceCounters reports pool checkouts and fresh constructions (a
// high news/gets ratio means the pool is thrashing), for /metrics.
func workspaceCounters() (gets, news uint64) { return wsGets.Load(), wsNews.Load() }

// contentTypeJSON is the shared header value slice; assigning it
// directly avoids the per-call []string allocation of Header().Set.
var contentTypeJSON = []string{"application/json"}

func setContentTypeJSON(h http.Header) {
	if _, ok := h["Content-Type"]; !ok {
		h["Content-Type"] = contentTypeJSON
	}
}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip form, scientific notation only outside
// [1e-6, 1e21), and a minimal exponent ("e-9", not "e-09").
//
//dpvet:hotpath
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendPairAnswer appends one answered pair in PairAnswer's wire form,
// including its null+unreachable convention for ±Inf.
//
//dpvet:hotpath
func appendPairAnswer(b []byte, s, t int, v float64) []byte {
	b = append(b, `{"s":`...)
	b = strconv.AppendInt(b, int64(s), 10)
	b = append(b, `,"t":`...)
	b = strconv.AppendInt(b, int64(t), 10)
	if math.IsInf(v, 0) {
		return append(b, `,"value":null,"unreachable":true}`...)
	}
	b = append(b, `,"value":`...)
	b = appendJSONFloat(b, v)
	return append(b, '}')
}

// appendErrorLine appends the standard {"error":...} envelope as one
// NDJSON line. Error paths are cold; delegating the string escaping to
// encoding/json keeps them correct for arbitrary message bytes.
func appendErrorLine(b []byte, err error) []byte {
	msg, merr := json.Marshal(errorEnvelope{Error: err.Error()})
	if merr != nil {
		msg = []byte(`{"error":"internal: unencodable error"}`)
	}
	b = append(b, msg...)
	return append(b, '\n')
}

// scanQueryPair reads s and t straight from a raw query string without
// building the url.Values map. It understands only verbatim
// "s=<int>&t=<int>" spellings (any order, extra keys ignored like
// url.Values.Get, first occurrence wins); percent escapes, '+', or ';'
// make it report !ok so the caller re-parses through url.Values with
// unchanged semantics.
//
//dpvet:hotpath
func scanQueryPair(raw string) (s, t int, ok bool) {
	var haveS, haveT bool
	for len(raw) > 0 {
		var seg string
		if k := strings.IndexByte(raw, '&'); k >= 0 {
			seg, raw = raw[:k], raw[k+1:]
		} else {
			seg, raw = raw, ""
		}
		if seg == "" {
			continue
		}
		if strings.IndexByte(seg, '%') >= 0 || strings.IndexByte(seg, '+') >= 0 || strings.IndexByte(seg, ';') >= 0 {
			return 0, 0, false
		}
		eq := strings.IndexByte(seg, '=')
		if eq < 0 {
			continue // bare key: url.Values maps it to "", irrelevant to s/t
		}
		key, val := seg[:eq], seg[eq+1:]
		switch key {
		case "s":
			if haveS {
				continue
			}
			v, err := strconv.Atoi(val)
			if err != nil {
				return 0, 0, false
			}
			s, haveS = v, true
		case "t":
			if haveT {
				continue
			}
			v, err := strconv.Atoi(val)
			if err != nil {
				return 0, 0, false
			}
			t, haveT = v, true
		}
	}
	if !haveS || !haveT {
		return 0, 0, false
	}
	return s, t, true
}

// isJSONSpace reports JSON (RFC 8259) insignificant whitespace.
//
//dpvet:hotpath
func isJSONSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

//dpvet:hotpath
func skipJSONSpace(data []byte, i int) int {
	for i < len(data) && isJSONSpace(data[i]) {
		i++
	}
	return i
}

// parseJSONInt parses one JSON integer literal (no fraction, exponent,
// or leading zeros) starting at i, reporting the value and the index
// past it.
//
//dpvet:hotpath
func parseJSONInt(data []byte, i int) (val, next int, ok bool) {
	neg := false
	if i < len(data) && data[i] == '-' {
		neg = true
		i++
	}
	start := i
	for i < len(data) && data[i] >= '0' && data[i] <= '9' {
		if val > (math.MaxInt-9)/10 {
			return 0, 0, false // overflow: defer to the strict parser
		}
		val = val*10 + int(data[i]-'0')
		i++
	}
	if i == start {
		return 0, 0, false
	}
	if data[start] == '0' && i-start > 1 {
		return 0, 0, false // leading zero is not JSON
	}
	if neg {
		val = -val
	}
	return val, i, true
}

// parseATOI parses an optionally signed ASCII integer over the whole
// byte range, with strconv.Atoi's acceptance (leading zeros fine,
// leading '+' fine) minus its allocation.
//
//dpvet:hotpath
func parseATOI(data []byte) (val int, ok bool) {
	i := 0
	neg := false
	if i < len(data) && (data[i] == '+' || data[i] == '-') {
		neg = data[i] == '-'
		i++
	}
	if i == len(data) {
		return 0, false
	}
	for ; i < len(data); i++ {
		c := data[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		if val > (math.MaxInt-9)/10 {
			return 0, false
		}
		val = val*10 + int(c-'0')
	}
	if neg {
		val = -val
	}
	return val, true
}

// parsePointBodyFast decodes one {"s":<int>,"t":<int>} object (either
// key order, duplicate keys last-wins like encoding/json). Anything
// else — unknown keys, escapes, non-integer values, trailing content —
// reports !ok for the strict decoder to re-parse.
//
//dpvet:hotpath
func parsePointBodyFast(data []byte) (s, t int, ok bool) {
	i := skipJSONSpace(data, 0)
	if i >= len(data) || data[i] != '{' {
		return 0, 0, false
	}
	i = skipJSONSpace(data, i+1)
	var haveS, haveT bool
	for {
		if i >= len(data) {
			return 0, 0, false
		}
		if data[i] == '}' && !haveS && !haveT {
			return 0, 0, false // empty object: let the strict path report missing keys
		}
		if i+2 >= len(data) || data[i] != '"' || data[i+2] != '"' {
			return 0, 0, false
		}
		key := data[i+1]
		if key != 's' && key != 't' {
			return 0, 0, false
		}
		i = skipJSONSpace(data, i+3)
		if i >= len(data) || data[i] != ':' {
			return 0, 0, false
		}
		i = skipJSONSpace(data, i+1)
		v, next, vok := parseJSONInt(data, i)
		if !vok {
			return 0, 0, false
		}
		if key == 's' {
			s, haveS = v, true
		} else {
			t, haveT = v, true
		}
		i = skipJSONSpace(data, next)
		if i >= len(data) {
			return 0, 0, false
		}
		if data[i] == ',' {
			i = skipJSONSpace(data, i+1)
			continue
		}
		if data[i] != '}' {
			return 0, 0, false
		}
		i = skipJSONSpace(data, i+1)
		break
	}
	if i != len(data) || !haveS || !haveT {
		return 0, 0, false
	}
	return s, t, true
}

// parsePairsFast decodes the common batch shapes — text "s t" lines,
// JSON [[s,t],...], JSON [{"s":..,"t":..},...] — into dst without
// allocating beyond dst's growth. It reports !ok (with dst contents
// unspecified) for any input it is not certain ParsePairs would accept
// with the identical result, so the caller can fall back.
//
//dpvet:hotpath
func parsePairsFast(dst []dpgraph.VertexPair, data []byte) ([]dpgraph.VertexPair, bool) {
	i := skipJSONSpace(data, 0)
	if i >= len(data) {
		return dst, false // empty: slow path owns the ErrNoPairs message
	}
	if data[i] == '[' {
		j := skipJSONSpace(data, i+1)
		if j < len(data) && data[j] == '{' {
			return parseObjectPairsFast(dst, data, i)
		}
		return parseTuplePairsFast(dst, data, i)
	}
	return parseTextPairsFast(dst, data)
}

// parseTuplePairsFast decodes [[s,t], ...] starting at the '[' at i.
//
//dpvet:hotpath
func parseTuplePairsFast(dst []dpgraph.VertexPair, data []byte, i int) ([]dpgraph.VertexPair, bool) {
	i = skipJSONSpace(data, i+1)
	if i < len(data) && data[i] == ']' {
		return dst, skipJSONSpace(data, i+1) == len(data)
	}
	for {
		if i >= len(data) || data[i] != '[' {
			return dst, false
		}
		i = skipJSONSpace(data, i+1)
		s, next, ok := parseJSONInt(data, i)
		if !ok {
			return dst, false
		}
		i = skipJSONSpace(data, next)
		if i >= len(data) || data[i] != ',' {
			return dst, false
		}
		i = skipJSONSpace(data, i+1)
		t, next, ok := parseJSONInt(data, i)
		if !ok {
			return dst, false
		}
		i = skipJSONSpace(data, next)
		if i >= len(data) || data[i] != ']' {
			return dst, false // wrong arity or junk: strict path reports it
		}
		dst = append(dst, dpgraph.VertexPair{S: s, T: t})
		i = skipJSONSpace(data, i+1)
		if i < len(data) && data[i] == ',' {
			i = skipJSONSpace(data, i+1)
			continue
		}
		break
	}
	if i >= len(data) || data[i] != ']' {
		return dst, false
	}
	return dst, skipJSONSpace(data, i+1) == len(data)
}

// parseObjectPairsFast decodes [{"s":..,"t":..}, ...] starting at the
// '[' at i, with encoding/json's member semantics for the two known
// keys (missing key defaults to zero, duplicate key last-wins).
//
//dpvet:hotpath
func parseObjectPairsFast(dst []dpgraph.VertexPair, data []byte, i int) ([]dpgraph.VertexPair, bool) {
	i = skipJSONSpace(data, i+1)
	for {
		if i >= len(data) || data[i] != '{' {
			return dst, false
		}
		i = skipJSONSpace(data, i+1)
		var p dpgraph.VertexPair
		for i < len(data) && data[i] != '}' {
			if i+2 >= len(data) || data[i] != '"' || data[i+2] != '"' {
				return dst, false
			}
			key := data[i+1]
			if key != 's' && key != 't' {
				return dst, false // unknown or escaped key: strict path rejects/handles
			}
			i = skipJSONSpace(data, i+3)
			if i >= len(data) || data[i] != ':' {
				return dst, false
			}
			i = skipJSONSpace(data, i+1)
			v, next, ok := parseJSONInt(data, i)
			if !ok {
				return dst, false
			}
			if key == 's' {
				p.S = v
			} else {
				p.T = v
			}
			i = skipJSONSpace(data, next)
			if i < len(data) && data[i] == ',' {
				i = skipJSONSpace(data, i+1)
				if i < len(data) && data[i] == '}' {
					return dst, false // trailing comma is not JSON
				}
				continue
			}
		}
		if i >= len(data) {
			return dst, false
		}
		dst = append(dst, p)
		i = skipJSONSpace(data, i+1)
		if i < len(data) && data[i] == ',' {
			i = skipJSONSpace(data, i+1)
			continue
		}
		break
	}
	if i >= len(data) || data[i] != ']' {
		return dst, false
	}
	return dst, skipJSONSpace(data, i+1) == len(data)
}

// isTextSpace matches the ASCII whitespace strings.Fields would split
// on within a line (the line separator '\n' is handled by the caller).
//
//dpvet:hotpath
func isTextSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

// parseTextPairsFast decodes "s t" lines: blank lines and '#' comment
// lines skipped, exactly two integer fields otherwise. Any byte outside
// digits, signs, '#', and ASCII whitespace defers to the strict parser
// (which also owns all error reporting).
//
//dpvet:hotpath
func parseTextPairsFast(dst []dpgraph.VertexPair, data []byte) ([]dpgraph.VertexPair, bool) {
	for len(data) > 0 {
		var line []byte
		if k := bytes.IndexByte(data, '\n'); k >= 0 {
			line, data = data[:k], data[k+1:]
		} else {
			line, data = data, nil
		}
		lo, hi := 0, len(line)
		for lo < hi && isTextSpace(line[lo]) {
			lo++
		}
		for hi > lo && isTextSpace(line[hi-1]) {
			hi--
		}
		line = line[lo:hi]
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		k := 0
		for k < len(line) && !isTextSpace(line[k]) {
			k++
		}
		f0 := line[:k]
		for k < len(line) && isTextSpace(line[k]) {
			k++
		}
		rest := line[k:]
		for _, c := range rest {
			if isTextSpace(c) {
				return dst, false // three or more fields: strict path reports it
			}
		}
		s, ok1 := parseATOI(f0)
		t, ok2 := parseATOI(rest)
		if !ok1 || !ok2 {
			return dst, false
		}
		dst = append(dst, dpgraph.VertexPair{S: s, T: t})
	}
	if len(dst) == 0 {
		return dst, false // nothing but comments/blanks: slow path decides
	}
	return dst, true
}

// bodyTooLargeError mirrors http.MaxBytesError for the manual body
// reader; writeBodyError maps both onto 413.
type bodyTooLargeError struct{ limit int64 }

func (e *bodyTooLargeError) Error() string {
	return fmt.Sprintf("request body exceeds %d bytes", e.limit)
}

// readBodyLimit reads r fully into dst (reusing its capacity), erroring
// once more than limit bytes arrive. It replaces the
// io.ReadAll(http.MaxBytesReader(...)) pair, which allocates a fresh
// reader and result slice per request.
//
//dpvet:hotpath
func readBodyLimit(dst []byte, r io.Reader, limit int64) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if int64(len(dst)) > limit {
			return dst, &bodyTooLargeError{limit: limit} //dpvet:allow hotpath -- oversized-body rejection is a cold error path; well-formed requests never reach it
		}
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}
