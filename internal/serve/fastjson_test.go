package serve

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/dpgraph"
)

// TestScanQueryPairParity drives the RawQuery scanner against
// url.ParseQuery: whenever the scanner accepts a query string, its
// (s, t) must equal what the url.Values path would have produced, and
// it must reject (not mis-parse) every spelling whose decoding it does
// not implement.
func TestScanQueryPairParity(t *testing.T) {
	cases := []string{
		"s=1&t=2", "t=2&s=1", "s=0&t=0", "s=-3&t=+7", "s=007&t=8",
		"s=1&t=2&x=9", "x=9&s=1&t=2", "s=1&s=5&t=2", "t=2&t=9&s=1",
		"s=1", "t=2", "", "s=&t=2", "s=a&t=2", "s=1&t=2.5",
		"s=%31&t=2", "s=+1&t=2", "s=1;t=2", "s=1&t=2&", "&s=1&t=2",
		"s=1&&t=2", "s==1&t=2", "s=1&t", "s=9999999999999999999&t=1",
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		cases = append(cases, "s="+strconv.Itoa(rng.Intn(2000)-1000)+"&t="+strconv.Itoa(rng.Intn(2000)-1000))
	}
	for _, raw := range cases {
		gs, gt, ok := scanQueryPair(raw)
		vals, _ := url.ParseQuery(raw)
		ws, err1 := strconv.Atoi(vals.Get("s"))
		wt, err2 := strconv.Atoi(vals.Get("t"))
		slowOK := err1 == nil && err2 == nil
		if ok {
			if !slowOK {
				t.Errorf("scanQueryPair(%q) accepted what url.ParseQuery rejects", raw)
				continue
			}
			if gs != ws || gt != wt {
				t.Errorf("scanQueryPair(%q) = (%d,%d), url.Values path = (%d,%d)", raw, gs, gt, ws, wt)
			}
		}
		// !ok is always fine: the handler falls back to the url.Values
		// path, so rejections cannot change behavior.
	}
}

// TestAppendPairAnswerParity pins the fast encoder to PairAnswer's
// MarshalJSON output for finite, negative, tiny, huge, and infinite
// values.
func TestAppendPairAnswerParity(t *testing.T) {
	vals := []float64{0, 1, -1, 41.2151, 1e-7, -2.5e-7, 1e20, 1e21, 123456789.125,
		math.Inf(1), math.Inf(-1), 0.1, 2.0 / 3.0, 5e-324, math.MaxFloat64}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		vals = append(vals, rng.NormFloat64()*math.Pow(10, float64(rng.Intn(40)-20)))
	}
	for _, v := range vals {
		for _, pair := range [][2]int{{0, 1}, {-5, 123456}, {7, 7}} {
			want, err := json.Marshal(PairAnswer{S: pair[0], T: pair[1], Value: v})
			if err != nil {
				t.Fatalf("marshal PairAnswer(%v): %v", v, err)
			}
			got := appendPairAnswer(nil, pair[0], pair[1], v)
			if string(got) != string(want) {
				t.Errorf("appendPairAnswer(%d,%d,%g) = %s, want %s", pair[0], pair[1], v, got, want)
			}
		}
	}
}

// TestAppendJSONFloatQuick is the randomized form of the same property:
// for any finite float64 the fast append must equal encoding/json.
func TestAppendJSONFloatQuick(t *testing.T) {
	f := func(v float64) bool {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return true
		}
		want, err := json.Marshal(v)
		if err != nil {
			return false
		}
		return string(appendJSONFloat(nil, v)) == string(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestParsePairsFastParity drives the fast batch parser against
// ParsePairs over every input family: on accept the decoded pairs must
// match exactly, and the canonical hot shapes must actually take the
// fast path (a silent permanent fallback would be a quiet perf bug).
func TestParsePairsFastParity(t *testing.T) {
	cases := []struct {
		in       string
		wantFast bool
	}{
		{"0 1\n2 3\n", true},
		{"0 1", true},
		{"  7   9  \n\n# comment\n4 5\r\n", true},
		{"-1 +2\n007 8\n", true},
		{"[[0,1],[2,3]]", true},
		{" [ [ 0 , 1 ] , [ 2 , 3 ] ] ", true},
		{"[]", true},
		{"[ ]", true},
		{`[{"s":0,"t":1},{"t":3,"s":2}]`, true},
		{`[{"s":0}]`, true}, // missing key defaults to 0, same as encoding/json
		{`[{"s":1,"s":2,"t":3}]`, true},
		{"", false},
		{"   \n  ", false},
		{"0 1 2\n", false},
		{"0\n", false},
		{"a b\n", false},
		{"0 1 # trailing\n", false},
		{"[[0,1],[2]]", false},
		{"[[0,1],]", false},
		{"[[0,1]] extra", false},
		{`[{"s":0,"x":1}]`, false},
		{`[{"s":0,"t":1},]`, false},
		{"[[0,01]]", false},
		{"[[0,1.5]]", false},
		{"[[0,1e2]]", false},
		{`[{"s":0,"t":1}] [`, false},
		{"9999999999999999999 1\n", false},
	}
	for _, tc := range cases {
		fastPairs, ok := parsePairsFast(nil, []byte(tc.in))
		slowPairs, slowErr := ParsePairs([]byte(tc.in))
		if ok != tc.wantFast {
			t.Errorf("parsePairsFast(%q) fast=%v, want %v", tc.in, ok, tc.wantFast)
		}
		if !ok {
			continue
		}
		if slowErr != nil {
			t.Errorf("parsePairsFast(%q) accepted what ParsePairs rejects: %v", tc.in, slowErr)
			continue
		}
		if len(fastPairs) != len(slowPairs) {
			t.Errorf("parsePairsFast(%q): %d pairs, ParsePairs: %d", tc.in, len(fastPairs), len(slowPairs))
			continue
		}
		for i := range fastPairs {
			if fastPairs[i] != slowPairs[i] {
				t.Errorf("parsePairsFast(%q)[%d] = %+v, want %+v", tc.in, i, fastPairs[i], slowPairs[i])
			}
		}
	}
}

// TestParsePairsFastQuick fuzzes random pair batches through all three
// wire forms: the fast parser must accept each canonical rendering and
// agree with ParsePairs exactly.
func TestParsePairsFastQuick(t *testing.T) {
	f := func(raw []int16) bool {
		pairs := make([]dpgraph.VertexPair, len(raw)/2)
		for i := range pairs {
			pairs[i] = dpgraph.VertexPair{S: int(raw[2*i]), T: int(raw[2*i+1])}
		}
		if len(pairs) == 0 {
			return true
		}
		text := make([]byte, 0, 16*len(pairs))
		for _, p := range pairs {
			text = strconv.AppendInt(text, int64(p.S), 10)
			text = append(text, ' ')
			text = strconv.AppendInt(text, int64(p.T), 10)
			text = append(text, '\n')
		}
		tuples, _ := json.Marshal(func() [][]int {
			out := make([][]int, len(pairs))
			for i, p := range pairs {
				out[i] = []int{p.S, p.T}
			}
			return out
		}())
		objs, _ := json.Marshal(pairs)
		for _, in := range [][]byte{text, tuples, objs} {
			got, ok := parsePairsFast(nil, in)
			if !ok {
				return false
			}
			want, err := ParsePairs(in)
			if err != nil || !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParsePointBodyFastParity checks the point-body fast path against
// the strict decoder.
func TestParsePointBodyFastParity(t *testing.T) {
	cases := []struct {
		in       string
		wantFast bool
	}{
		{`{"s":3,"t":17}`, true},
		{`{"t":17,"s":3}`, true},
		{` { "s" : -1 , "t" : 0 } `, true},
		{`{"s":1,"s":2,"t":3}`, true}, // duplicate: last wins, like encoding/json
		{`{"s":3}`, false},
		{`{}`, false},
		{`{"s":3,"t":17,"x":1}`, false},
		{`{"s":3,"t":17}{"s":1,"t":2}`, false},
		{`{"s":"3","t":17}`, false},
		{`{"s":3.5,"t":17}`, false},
		{`{"s":03,"t":17}`, false},
		{`[3,17]`, false},
		{``, false},
	}
	for _, tc := range cases {
		fs, ft, ok := parsePointBodyFast([]byte(tc.in))
		if ok != tc.wantFast {
			t.Errorf("parsePointBodyFast(%q) ok=%v, want %v", tc.in, ok, tc.wantFast)
		}
		if !ok {
			continue
		}
		ss, st, err := pairFromBytes([]byte(tc.in))
		if err != nil {
			t.Errorf("parsePointBodyFast(%q) accepted what the strict decoder rejects: %v", tc.in, err)
			continue
		}
		if fs != ss || ft != st {
			t.Errorf("parsePointBodyFast(%q) = (%d,%d), strict = (%d,%d)", tc.in, fs, ft, ss, st)
		}
	}
}

// TestReadBodyLimit covers the manual body reader: under, at, and over
// the limit, and the 413 mapping of its error.
func TestReadBodyLimit(t *testing.T) {
	data, err := readBodyLimit(nil, strings.NewReader("hello"), 5)
	if err != nil || string(data) != "hello" {
		t.Fatalf("at-limit read = (%q, %v)", data, err)
	}
	if _, err = readBodyLimit(nil, strings.NewReader("hello!"), 5); err == nil {
		t.Fatal("over-limit read accepted")
	}
	rec := httptest.NewRecorder()
	writeBodyError(rec, err)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit error mapped to %d, want 413", rec.Code)
	}
}
