package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLivezReadyz pins the liveness/readiness split: /livez says the
// process is up, /readyz says the releases are materialized and the
// server is not draining — and lists the ready release names (the
// coordinator's routing table rides on that).
func TestLivezReadyz(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	if status, _ := get(t, ts.URL+"/livez"); status != http.StatusOK {
		t.Errorf("livez status %d", status)
	}
	var rz struct {
		Status   string   `json:"status"`
		Releases []string `json:"releases"`
	}
	status, data := get(t, ts.URL+"/readyz")
	if err := json.Unmarshal(data, &rz); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || rz.Status != "ready" || len(rz.Releases) != 0 {
		t.Errorf("empty readyz = %d %+v", status, rz)
	}

	createRelease(t, ts, `{"name":"main","mechanism":"release","seed":7}`)
	status, data = get(t, ts.URL+"/readyz")
	if err := json.Unmarshal(data, &rz); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || len(rz.Releases) != 1 || rz.Releases[0] != "main" {
		t.Errorf("readyz after release = %d %+v", status, rz)
	}

	// Draining: readyz flips, new queries shed with Retry-After, the
	// process stays live, health endpoints stay reachable.
	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	status, data = get(t, ts.URL+"/readyz")
	if err := json.Unmarshal(data, &rz); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable || rz.Status != "draining" {
		t.Errorf("draining readyz = %d %+v", status, rz)
	}
	if status, _ := get(t, ts.URL+"/livez"); status != http.StatusOK {
		t.Errorf("livez during drain: status %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/releases/main/distance?s=0&t=15")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("draining query: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if status, _ := get(t, ts.URL+"/metrics"); status != http.StatusOK {
		t.Errorf("metrics during drain: status %d", status)
	}
}

// TestRegistryLifecycleRace hammers one release name with concurrent
// DELETE, snapshot :import, and coalesced point queries under -race.
// The invariant: a query either fails cleanly (the release was gone)
// or answers with exactly the released value — never a half-deleted
// release's garbage, never a 5xx.
func TestRegistryLifecycleRace(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceWindow: 500 * time.Microsecond})

	// Seeded release: its values are deterministic, and the snapshot
	// reimports to bit-identical values, so ground truth is stable
	// across every delete/import cycle.
	createRelease(t, ts, `{"name":"race","mechanism":"release","epsilon":2,"seed":7}`)
	status, artifact, _ := fetchSnapshot(t, ts.URL+"/v1/releases/race/snapshot")
	if status != http.StatusOK {
		t.Fatalf("snapshot: status %d", status)
	}
	truth := make([]float64, 16)
	for u := 0; u < 16; u++ {
		truth[u] = distanceOf(t, ts.URL, "race", 0, u).Value
	}

	const iterations = 150
	var (
		wg        sync.WaitGroup
		served    atomic.Int64
		badStatus atomic.Value
	)
	// Deleter: rips the release out from under everyone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iterations; i++ {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/releases/race", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				badStatus.Store(fmt.Sprintf("delete: %v", err))
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			// 204/200 when it existed, 404 when the importer lost the race.
			if resp.StatusCode >= 500 {
				badStatus.Store(fmt.Sprintf("delete: status %d", resp.StatusCode))
				return
			}
		}
	}()
	// Importer: keeps resurrecting it from the sealed artifact.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iterations; i++ {
			resp, err := http.Post(ts.URL+"/v1/releases/race:import", "application/octet-stream", bytes.NewReader(artifact))
			if err != nil {
				badStatus.Store(fmt.Sprintf("import: %v", err))
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			// 201 when the name was free, 409 when it already existed.
			if resp.StatusCode >= 500 {
				badStatus.Store(fmt.Sprintf("import: status %d", resp.StatusCode))
				return
			}
		}
	}()
	// Queriers: same-source points, so concurrent ones coalesce into
	// shared sweeps that may be in flight while the release dies.
	for wk := 0; wk < 4; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				u := (wk*5 + i) % 16
				resp, err := http.Get(fmt.Sprintf("%s/v1/releases/race/distance?s=0&t=%d", ts.URL, u))
				if err != nil {
					badStatus.Store(fmt.Sprintf("query: %v", err))
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					var ans PairAnswer
					if err := json.Unmarshal(data, &ans); err != nil {
						badStatus.Store(fmt.Sprintf("query: bad 200 body %s", data))
						return
					}
					if math.Float64bits(ans.Value) != math.Float64bits(truth[u]) {
						badStatus.Store(fmt.Sprintf("query (0,%d) answered %v from a half-deleted release, want %v", u, ans.Value, truth[u]))
						return
					}
					served.Add(1)
				case resp.StatusCode == http.StatusNotFound:
					// The release was deleted out from under us: a clean miss.
				case resp.StatusCode >= 500:
					badStatus.Store(fmt.Sprintf("query: status %d: %s", resp.StatusCode, data))
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	if msg := badStatus.Load(); msg != nil {
		t.Fatal(msg)
	}
	if served.Load() == 0 {
		t.Error("no query ever landed on a live release; the race never exercised the serving path")
	}
}

// TestDrainSheds503 covers the drain→reject path without a real
// listener: once draining, every non-health endpoint sheds with a
// retryable 503 regardless of method.
func TestDrainSheds503(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	createRelease(t, ts, `{"name":"main","mechanism":"release","seed":7}`)
	s.StartDrain()
	for _, probe := range []struct{ method, path, body string }{
		{http.MethodGet, "/v1/releases", ""},
		{http.MethodPost, "/v1/releases", `{"name":"x","mechanism":"release","seed":1}`},
		{http.MethodPost, "/v1/releases/main/distances", `[[0,1]]`},
		{http.MethodDelete, "/v1/releases/main", ""},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader(probe.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s %s during drain: status %d, Retry-After %q",
				probe.method, probe.path, resp.StatusCode, resp.Header.Get("Retry-After"))
		}
	}
}
