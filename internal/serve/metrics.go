package serve

import (
	"sort"
	"sync/atomic"
	"time"
)

// releaseMetrics counts one release's serving traffic. Counters are
// atomics so the query hot path never takes a lock; the latency
// sampler keeps a fixed ring of recent per-query latencies from which
// /metrics computes quantiles on demand.
type releaseMetrics struct {
	queries   atomic.Uint64 // distance queries answered (batch pairs count individually)
	requests  atomic.Uint64 // HTTP requests served (a batch is one request)
	errors    atomic.Uint64 // malformed or failed requests (bad pairs, out of range)
	rejected  atomic.Uint64 // requests shed by admission control (429)
	latencies latencyRing

	// Coalescer traffic: batches run, pairs answered in shared
	// (multi-waiter) vs solo batches, and what triggered each flush.
	coalesceBatches atomic.Uint64
	coalesceShared  atomic.Uint64
	coalesceSolo    atomic.Uint64
	coalesceFull    atomic.Uint64
	coalesceTimer   atomic.Uint64
}

// observe records one served request: n answered pairs in d.
func (m *releaseMetrics) observe(n int, d time.Duration) {
	m.requests.Add(1)
	m.queries.Add(uint64(n))
	m.latencies.record(d)
}

// latencyRing is a bounded lock-free ring of recent request latencies.
// Writers claim slots with one atomic add; quantile reads copy the ring
// and sort. A read racing a writer observes either the old or the new
// sample of a slot — both valid — so the hot path stays wait-free and
// -race-clean without a lock.
type latencyRing struct {
	n    atomic.Uint64
	ring [latencySamples]atomic.Int64
}

const latencySamples = 4096 // power of two keeps the modulo cheap

func (l *latencyRing) record(d time.Duration) {
	i := l.n.Add(1) - 1
	l.ring[i%latencySamples].Store(int64(d))
}

// quantiles returns the p50/p90/p99 of the sampled latencies in
// nanoseconds, zeros when nothing was recorded yet.
func (l *latencyRing) quantiles() (p50, p90, p99 int64) {
	n := l.n.Load()
	if n == 0 {
		return 0, 0, 0
	}
	if n > latencySamples {
		n = latencySamples
	}
	buf := make([]int64, n)
	for i := range buf {
		buf[i] = l.ring[i].Load()
	}
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	at := func(q float64) int64 {
		i := int(q * float64(len(buf)-1))
		return buf[i]
	}
	return at(0.50), at(0.90), at(0.99)
}

// metricsSnapshot is the JSON shape of one release's /metrics entry.
type metricsSnapshot struct {
	Requests    uint64 `json:"requests"`
	Queries     uint64 `json:"queries"`
	Errors      uint64 `json:"errors"`
	Rejected429 uint64 `json:"rejected_429"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Coalesce reports the sweep coalescer's traffic: shared_queries
	// are pairs that rode a batch with at least one other request (the
	// hits), solo_queries paid the window for nothing (the misses).
	Coalesce struct {
		Batches       uint64 `json:"batches"`
		SharedQueries uint64 `json:"shared_queries"`
		SoloQueries   uint64 `json:"solo_queries"`
		FullFlushes   uint64 `json:"full_flushes"`
		TimerFlushes  uint64 `json:"timer_flushes"`
	} `json:"coalesce"`
	LatencyNS struct {
		P50 int64 `json:"p50"`
		P90 int64 `json:"p90"`
		P99 int64 `json:"p99"`
	} `json:"latency_ns"`
}

func (m *releaseMetrics) snapshot(cacheHits, cacheMisses uint64) metricsSnapshot {
	var s metricsSnapshot
	s.Requests = m.requests.Load()
	s.Queries = m.queries.Load()
	s.Errors = m.errors.Load()
	s.Rejected429 = m.rejected.Load()
	s.CacheHits = cacheHits
	s.CacheMisses = cacheMisses
	s.Coalesce.Batches = m.coalesceBatches.Load()
	s.Coalesce.SharedQueries = m.coalesceShared.Load()
	s.Coalesce.SoloQueries = m.coalesceSolo.Load()
	s.Coalesce.FullFlushes = m.coalesceFull.Load()
	s.Coalesce.TimerFlushes = m.coalesceTimer.Load()
	s.LatencyNS.P50, s.LatencyNS.P90, s.LatencyNS.P99 = m.latencies.quantiles()
	return s
}
