package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/dpgraph"
)

// ErrNoPairs is returned by ParsePairs for an input that contains no
// s-t pairs at all (empty or whitespace); an explicit empty JSON array
// parses to an empty slice instead. Callers attach their own context
// (stdin hint, HTTP status).
var ErrNoPairs = errors.New("no s-t pairs: want text lines \"s t\" or a JSON array")

// maxPairsLineBytes bounds one text line of pairs input. It matches the
// 16 MiB line limit graph.ReadText accepts, so a pairs file is never
// stricter about line length than the graph file next to it (the
// default 64 KiB bufio.Scanner token limit used to reject long comment
// lines that the graph loader took happily).
const maxPairsLineBytes = 16 * 1024 * 1024

// ParsePairs decodes a batch of s-t query pairs from text lines "s t"
// or a JSON array ([[s,t], ...] or [{"s":..,"t":..}, ...]), sniffing
// the format. Both JSON forms reject trailing content after the array,
// and the object form rejects unknown keys, so a misspelled field or a
// concatenated second document errors instead of being silently
// accepted. It is shared by the CLI query subcommand (stdin) and the
// HTTP batch-distance handler (request body).
func ParsePairs(data []byte) ([]dpgraph.VertexPair, error) {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, ErrNoPairs
	}
	if strings.HasPrefix(trimmed, "[") {
		if rest := strings.TrimSpace(trimmed[1:]); strings.HasPrefix(rest, "{") {
			// Object form: reject unknown keys so a misspelled field
			// ({"src":3}) errors instead of silently querying (0, 0).
			dec := json.NewDecoder(strings.NewReader(trimmed))
			dec.DisallowUnknownFields()
			var objs []dpgraph.VertexPair
			if err := dec.Decode(&objs); err != nil {
				return nil, fmt.Errorf("bad JSON pairs: %w", err)
			}
			// json.Decoder stops after the first value; anything left
			// over is a second document, not trailing whitespace.
			if err := rejectTrailing(dec); err != nil {
				return nil, err
			}
			return objs, nil
		}
		// Tuple form: json.Unmarshal rejects trailing content itself.
		var tuples [][]int
		if err := json.Unmarshal([]byte(trimmed), &tuples); err != nil {
			return nil, fmt.Errorf("bad JSON pairs: %w", err)
		}
		pairs := make([]dpgraph.VertexPair, len(tuples))
		for i, tu := range tuples {
			if len(tu) != 2 {
				return nil, fmt.Errorf("JSON pair %d has %d elements, want 2", i, len(tu))
			}
			pairs[i] = dpgraph.VertexPair{S: tu[0], T: tu[1]}
		}
		return pairs, nil
	}
	var pairs []dpgraph.VertexPair
	sc := bufio.NewScanner(strings.NewReader(trimmed))
	sc.Buffer(make([]byte, 0, 64*1024), maxPairsLineBytes)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want \"s t\", got %q", lineNo, line)
		}
		s, err1 := strconv.Atoi(fields[0])
		t, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("line %d: bad pair %q", lineNo, line)
		}
		pairs = append(pairs, dpgraph.VertexPair{S: s, T: t})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pairs, nil
}

// rejectTrailing errors when dec's input holds anything but whitespace
// after the value already decoded.
func rejectTrailing(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("bad JSON pairs: trailing content after the array")
	}
	return nil
}

// PairAnswer is one answered s-t query, the wire unit shared by the
// CLI's -json query envelope and the HTTP distance handlers.
type PairAnswer struct {
	S     int     `json:"s"`
	T     int     `json:"t"`
	Value float64 `json:"value"`
}

// MarshalJSON renders topology-disconnected pairs (±Inf, which
// encoding/json rejects as a float) as a null value with an explicit
// unreachable marker.
func (a PairAnswer) MarshalJSON() ([]byte, error) {
	if math.IsInf(a.Value, 0) {
		return json.Marshal(struct {
			S           int  `json:"s"`
			T           int  `json:"t"`
			Value       *int `json:"value"`
			Unreachable bool `json:"unreachable"`
		}{S: a.S, T: a.T, Unreachable: true})
	}
	type plain PairAnswer
	return json.Marshal(plain(a))
}

// FiniteOrNil returns &v, or nil when v is not finite — the JSON
// null+unreachable convention PairAnswer uses, usable on any released
// value that may be ±Inf (e.g. a distance on a topology-disconnected
// pair, or an unreachable entry of a single-source vector).
func FiniteOrNil(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}
