package serve

import (
	"testing"
	"unicode/utf8"
)

// FuzzParsePairs drives arbitrary bodies through both pair decoders.
// Neither may panic, and the differential contract of parsePairsFast
// holds for every input: when the fast path reports ok, the strict
// ParsePairs must accept the same bytes and produce the identical pair
// sequence — otherwise the serving hot path would silently answer
// queries the CLI/slow path would have rejected (or vice versa).
func FuzzParsePairs(f *testing.F) {
	seeds := []string{
		"0 1\n2 3\n",
		"  7   9  \n\n# comment\n4 5\r\n",
		"-1 +2\n007 8\n",
		"[[0,1],[2,3]]",
		" [ [ 0 , 1 ] , [ 2 , 3 ] ] ",
		"[]",
		`[{"s":0,"t":1},{"t":3,"s":2}]`,
		`[{"s":0}]`,
		`[{"s":1,"s":2,"t":3}]`,
		"",
		"0 1 2\n",
		"[[0,1],]",
		"[[0,1]] extra",
		`[{"s":0,"x":1}]`,
		"[[0,01]]",
		"[[0,1.5]]",
		"9999999999999999999 1\n",
		"[[9223372036854775807,-9223372036854775808]]",
		"[\x00]",
		"\xff\xfe 1 2",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fastPairs, ok := parsePairsFast(nil, data)
		slowPairs, slowErr := ParsePairs(data)
		if !ok {
			return // fast path declined; slow path owns the verdict
		}
		if slowErr != nil {
			t.Fatalf("parsePairsFast accepted %q but ParsePairs rejects it: %v", truncate(data), slowErr)
		}
		if len(fastPairs) != len(slowPairs) {
			t.Fatalf("parsePairsFast(%q): %d pairs, ParsePairs: %d", truncate(data), len(fastPairs), len(slowPairs))
		}
		for i := range fastPairs {
			if fastPairs[i] != slowPairs[i] {
				t.Fatalf("parsePairsFast(%q)[%d] = %+v, ParsePairs = %+v", truncate(data), i, fastPairs[i], slowPairs[i])
			}
		}
	})
}

// truncate keeps failure messages readable for large or binary inputs.
func truncate(data []byte) string {
	const max = 200
	if len(data) > max {
		data = data[:max]
	}
	if !utf8.Valid(data) {
		return string([]rune(string(data))) // replace invalid bytes
	}
	return string(data)
}
