package serve

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/dpgraph"
)

func TestServeParsePairs(t *testing.T) {
	want := []dpgraph.VertexPair{{S: 1, T: 2}, {S: 3, T: 4}}
	accept := []string{
		"1 2\n3 4\n",
		"  1 2 \n# comment\n\n3 4\n",
		`[[1,2],[3,4]]`,
		`[{"s":1,"t":2},{"s":3,"t":4}]`,
		"  [[1,2],[3,4]]  \n",
		`[{"s":1,"t":2},{"s":3,"t":4}]` + "\n\t ",
	}
	for _, in := range accept {
		got, err := ParsePairs([]byte(in))
		if err != nil {
			t.Errorf("ParsePairs(%q): %v", in, err)
			continue
		}
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("ParsePairs(%q) = %v, want %v", in, got, want)
		}
	}

	reject := []string{
		// Trailing content after either JSON form: the object form used
		// to stop at the first value and silently accept the rest.
		`[[1,2]] garbage`,
		`[[1,2]][[3,4]]`,
		`[{"s":1,"t":2}] garbage`,
		`[{"s":1,"t":2}][{"s":3,"t":4}]`,
		`[{"s":1,"t":2}] [[3,4]]`,
		`[{"s":1,"t":2}],`,
		// Malformed content.
		`[{"src":1,"dst":2}]`,
		`[[1]]`,
		`[[1,2,3]]`,
		`[`,
		"1\n",
		"1 2 3\n",
		"a b\n",
	}
	for _, in := range reject {
		if got, err := ParsePairs([]byte(in)); err == nil {
			t.Errorf("ParsePairs(%q) accepted: %v", in, got)
		}
	}

	if _, err := ParsePairs([]byte("  \n \t")); !errors.Is(err, ErrNoPairs) {
		t.Errorf("blank input: err = %v, want ErrNoPairs", err)
	}
	if got, err := ParsePairs([]byte("[]")); err != nil || len(got) != 0 {
		t.Errorf("empty array = (%v, %v), want an empty slice", got, err)
	}
}

// TestServeParsePairsLongLine checks that text input accepts lines past
// the 64 KiB default bufio.Scanner token limit, matching the 16 MiB
// graph.ReadText allows (a long comment line used to abort the batch).
func TestServeParsePairsLongLine(t *testing.T) {
	in := "# " + strings.Repeat("x", 200*1024) + "\n5 6\n"
	got, err := ParsePairs([]byte(in))
	if err != nil {
		t.Fatalf("long comment line rejected: %v", err)
	}
	if len(got) != 1 || got[0] != (dpgraph.VertexPair{S: 5, T: 6}) {
		t.Errorf("pairs = %v", got)
	}
}

func TestServePairAnswerJSON(t *testing.T) {
	data, err := json.Marshal(PairAnswer{S: 1, T: 2, Value: 3.5})
	if err != nil || string(data) != `{"s":1,"t":2,"value":3.5}` {
		t.Errorf("finite answer = %s (%v)", data, err)
	}
	for _, sign := range []int{1, -1} {
		data, err := json.Marshal(PairAnswer{S: 1, T: 2, Value: math.Inf(sign)})
		if err != nil {
			t.Fatalf("infinite answer failed to marshal: %v", err)
		}
		if string(data) != `{"s":1,"t":2,"value":null,"unreachable":true}` {
			t.Errorf("infinite answer = %s", data)
		}
	}
	if FiniteOrNil(math.Inf(1)) != nil || FiniteOrNil(math.Inf(-1)) != nil || FiniteOrNil(math.NaN()) != nil {
		t.Error("FiniteOrNil passed a non-finite value through")
	}
	if v := FiniteOrNil(4.25); v == nil || *v != 4.25 {
		t.Error("FiniteOrNil dropped a finite value")
	}
}
