package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/dpgraph"
)

// release is one named, independently budgeted materialized release:
// its oracle, the result carrying the receipt, and the per-release
// serving state (admission slots, metrics). A release is registered
// before materialization finishes so concurrent creates of the same
// name conflict instead of double-spending; ready is closed once the
// oracle is usable.
type release struct {
	name    string
	spec    dpgraph.ReleaseSpec
	created time.Time

	ready chan struct{}
	// err is the materialization failure, set before ready is closed;
	// a failed release is removed from the registry by its creator.
	err    error
	oracle dpgraph.DistanceOracle
	result dpgraph.Result

	// into is the allocation-free batch entry: the oracle's own
	// DistancesInto when it implements dpgraph.BatchOracle, an
	// allocating adapter otherwise. Set by Server.publish; nil only for
	// releases wired up directly in tests, which batchInto tolerates.
	into func(pairs []dpgraph.VertexPair, out []float64) error

	// co coalesces concurrent queries into shared sweeps; nil when
	// coalescing is off for this release.
	co *coalescer

	// envOnce guards the lazily built batch-envelope chunks: the
	// constant JSON prefix up to "count": and the constant middle from
	// there through `"results":[`. Everything per-request is appended
	// between and after them.
	envOnce sync.Once
	envHead []byte
	envMid  []byte

	// inflight holds one token per admitted in-flight request; nil
	// means unlimited.
	inflight chan struct{}

	metrics releaseMetrics
}

// batchInto answers pairs into out through the fastest batch entry the
// release has.
func (rel *release) batchInto(pairs []dpgraph.VertexPair, out []float64) error {
	if rel.into != nil {
		return rel.into(pairs, out)
	}
	vals, err := rel.oracle.Distances(pairs)
	if err != nil {
		return err
	}
	copy(out, vals)
	return nil
}

// inRange reports whether both endpoints are valid vertices — the
// pre-validation required before handing a query to the coalescer,
// where an invalid pair would fail the whole shared batch.
func (rel *release) inRange(s, t int) bool {
	n := rel.oracle.N()
	return s >= 0 && s < n && t >= 0 && t < n
}

func (rel *release) pairsInRange(pairs []dpgraph.VertexPair) bool {
	for _, p := range pairs {
		if !rel.inRange(p.S, p.T) {
			return false
		}
	}
	return true
}

// envelopeChunks returns the constant prefix/middle of the compact
// batch envelope. Mechanism, bound, gamma, and receipt are fixed once
// the release materializes, so they are rendered exactly once.
func (rel *release) envelopeChunks() (head, mid []byte) {
	rel.envOnce.Do(func() {
		gamma := gammaOf(rel.spec)
		mech, err := json.Marshal(rel.spec.Mechanism)
		if err != nil {
			mech = []byte(`""`)
		}
		receipt := []byte("null")
		if rel.result != nil {
			if enc, err := json.Marshal(rel.result.Info().Receipt); err == nil {
				receipt = enc
			}
		}
		head = append(head, `{"mechanism":`...)
		head = append(head, mech...)
		head = append(head, `,"count":`...)
		mid = append(mid, `,"bound":`...)
		if b := rel.oracle.Bound(gamma); math.IsInf(b, 0) || math.IsNaN(b) {
			mid = append(mid, `null`...)
		} else {
			mid = appendJSONFloat(mid, b)
		}
		mid = append(mid, `,"gamma":`...)
		mid = appendJSONFloat(mid, gamma)
		mid = append(mid, `,"receipt":`...)
		mid = append(mid, receipt...)
		mid = append(mid, `,"results":[`...)
		rel.envHead, rel.envMid = head, mid
	})
	return rel.envHead, rel.envMid
}

// admit claims an in-flight slot, reporting false when the release is
// at its admission cap.
func (rel *release) admit() bool {
	if rel.inflight == nil {
		return true
	}
	select {
	case rel.inflight <- struct{}{}:
		return true
	default:
		rel.metrics.rejected.Add(1)
		return false
	}
}

// done releases an admitted slot.
func (rel *release) done() {
	if rel.inflight != nil {
		<-rel.inflight
	}
}

// cacheStats reports the oracle's result-cache counters when the
// serving path has one (indexed synthetic oracles). Reading rel.oracle
// is only safe after ready closes (handleCreate publishes it through
// that close); a still-materializing release reports zeros.
func (rel *release) cacheStats() (hits, misses uint64) {
	select {
	case <-rel.ready:
	default:
		return 0, 0
	}
	if o, ok := rel.oracle.(interface {
		CacheStats() (hits, misses uint64, ok bool)
	}); ok {
		if h, m, have := o.CacheStats(); have {
			return h, m
		}
	}
	return 0, 0
}

// registry is the mutex-guarded name -> release table. Queries only
// take the lock for the lookup; answering happens outside it.
type registry struct {
	mu sync.Mutex
	m  map[string]*release
}

// errTooManyReleases marks a reserve refused by the registry size cap
// (mapped to 429 by handleCreate, unlike a name conflict's 409).
var errTooManyReleases = errors.New("registry is full")

// reserve registers a materializing placeholder under name, failing
// when the name is taken or the registry holds maxReleases entries
// already (each entry retains an oracle and spent budget forever, so
// the cap bounds both memory and cumulative privacy loss).
func (r *registry) reserve(name string, spec dpgraph.ReleaseSpec, maxInflight, maxReleases int) (*release, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]*release)
	}
	if _, ok := r.m[name]; ok {
		return nil, fmt.Errorf("release %q already exists", name)
	}
	if maxReleases > 0 && len(r.m) >= maxReleases {
		return nil, fmt.Errorf("%w: %d releases held (cap %d); DELETE unused releases to free slots (spent budget is not refunded)", errTooManyReleases, len(r.m), maxReleases)
	}
	rel := &release{
		name:    name,
		spec:    spec,
		created: time.Now(),
		ready:   make(chan struct{}),
	}
	if maxInflight > 0 {
		rel.inflight = make(chan struct{}, maxInflight)
	}
	r.m[name] = rel
	return rel, nil
}

// remove drops exactly rel from the table. Matching by identity, not
// just name, keeps a stalled deleter (or a failed create's cleanup)
// from deleting a newer release that reused the name in the meantime.
func (r *registry) remove(rel *release) {
	r.mu.Lock()
	if r.m[rel.name] == rel {
		delete(r.m, rel.name)
	}
	r.mu.Unlock()
}

// lookup returns the release registered under name.
func (r *registry) lookup(name string) (*release, bool) {
	r.mu.Lock()
	rel, ok := r.m[name]
	r.mu.Unlock()
	return rel, ok
}

// list returns all registered releases sorted by name.
func (r *registry) list() []*release {
	r.mu.Lock()
	out := make([]*release, 0, len(r.m))
	for _, rel := range r.m {
		out = append(out, rel)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
