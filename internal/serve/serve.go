// Package serve is the HTTP distance-serving layer over the dpgraph
// release-once/query-many machinery: a long-running daemon materializes
// named, independently budgeted releases (each spending its privacy
// budget exactly once) and then answers unboundedly many point and
// batch distance queries from the releases' oracles as free
// post-processing — the serving-side realization of the paper's central
// economic property.
//
// Endpoints:
//
//	POST   /v1/releases                    materialize a release from a mechanism+args spec
//	GET    /v1/releases                    list releases with receipts and bounds
//	DELETE /v1/releases/{name}             unregister a release (frees memory, refunds nothing)
//	GET    /v1/releases/{name}/distance    one s-t query (?s=&t=)
//	POST   /v1/releases/{name}/distance    one s-t query ({"s":..,"t":..})
//	POST   /v1/releases/{name}/distances   batch query (text lines or JSON array of pairs)
//	POST   /v1/releases/{name}/distances:stream  pipelined NDJSON: text "s t" lines in, one answer object per line out
//	GET    /v1/releases/{name}/snapshot    download the sealed snapshot artifact (receipt-hash ETag)
//	POST   /v1/releases/{name}:import      register a release from an uploaded snapshot (zero budget)
//	GET    /livez                          liveness: the process is up
//	GET    /readyz                         readiness: all releases materialized and not draining
//	GET    /healthz                        legacy liveness alias (always ok while the process runs)
//	GET    /metrics                        query/cache/latency counters per release
//
// Every error is a JSON envelope {"error": "..."}; unreachable pairs
// use the same null+unreachable convention as the CLI's -json output.
// Request bodies are size-limited, and each release sheds load past its
// max-inflight admission cap with 429 responses.
//
// Privacy posture: queries are free post-processing, but every POST
// /v1/releases spends fresh budget over the same private weights —
// cumulative privacy loss grows with each release, so the registry is
// capped (Config.MaxReleases) and specs asking for seeded
// (deterministic, hence privacy-free) noise are refused unless the
// operator opted in with Config.AllowSeeded.
package serve

import (
	"bytes"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync/atomic"
	"time"

	"repro/dpgraph"
)

// Config carries the server-wide serving limits.
type Config struct {
	// MaxBodyBytes bounds any request body; <= 0 takes
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxInflight is the default per-release admission cap (concurrent
	// in-flight requests per release); a release spec may override it,
	// and 0 means unlimited.
	MaxInflight int
	// MaxReleases caps the registry size (each release retains its
	// oracle and any index forever, and each create spends fresh
	// budget over the same private weights, so the cap also bounds
	// cumulative privacy loss and memory); <= 0 takes
	// DefaultMaxReleases. Deleting a release frees its slot but never
	// refunds budget already spent.
	MaxReleases int
	// AllowSeeded permits specs carrying a nonzero Seed. Deterministic
	// noise is reproducible by anyone who knows the seed and therefore
	// offers NO privacy; leave this false outside tests and demos.
	AllowSeeded bool
	// MaxSnapshotBytes bounds uploaded snapshot artifacts on the
	// :import endpoint; <= 0 takes DefaultMaxSnapshotBytes.
	MaxSnapshotBytes int64
	// SigningKey, when set, signs every snapshot the server exports so
	// replicas can verify provenance.
	SigningKey ed25519.PrivateKey
	// VerifyKey, when set, requires every imported or boot-restored
	// snapshot to carry a signature verifying against it.
	VerifyKey ed25519.PublicKey
	// CoalesceWindow turns on cross-request sweep coalescing: concurrent
	// point queries (and batches up to coalesceSmallBatch pairs) against
	// a sweep-capable release are collected for at most this long and
	// answered through one shared oracle batch, so same-source queries
	// ride a single PHAST one-to-all pass. 0 (the default) disables
	// coalescing; a lone query's latency is never worse than the window
	// plus one direct query.
	CoalesceWindow time.Duration
	// CoalesceMaxPending flushes a shared batch early once this many
	// pairs are waiting; <= 0 takes DefaultCoalesceMaxPending.
	CoalesceMaxPending int
}

// DefaultMaxBodyBytes bounds request bodies when Config leaves
// MaxBodyBytes unset: enough for a ~1M-pair JSON batch, small enough
// that a hostile client cannot buffer unbounded memory per request.
const DefaultMaxBodyBytes = 32 << 20

// DefaultMaxReleases bounds the registry when Config leaves
// MaxReleases unset.
const DefaultMaxReleases = 64

// Server answers distance queries over a registry of materialized
// releases, all sharing one public topology and private weight vector.
// Each release runs in its own independently budgeted session. Safe for
// concurrent use; construct with New.
type Server struct {
	g       *dpgraph.Graph
	private []float64
	cfg     Config
	reg     registry
	started time.Time
	// draining flips readiness off and sheds new work during graceful
	// shutdown: load balancers watching /readyz stop sending before the
	// listener closes, and requests that race the drain get an explicit
	// 503 + Retry-After instead of a mid-request connection reset.
	draining atomic.Bool
}

// New returns a server holding the public topology and the private
// weights from which POST /v1/releases materializes releases.
func New(topology *dpgraph.Graph, private []float64, cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxReleases <= 0 {
		cfg.MaxReleases = DefaultMaxReleases
	}
	return &Server{g: topology, private: private, cfg: cfg, started: time.Now()}
}

// Handler returns the server's HTTP routing table. While the server is
// draining, every endpoint except the health/metrics probes answers
// 503 + Retry-After so a request racing the shutdown gets a clean,
// retryable refusal instead of a connection reset when the listener
// closes moments later.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/releases", s.handleList)
	mux.HandleFunc("POST /v1/releases", s.handleCreate)
	mux.HandleFunc("DELETE /v1/releases/{name}", s.handleDelete)
	// The import spelling /v1/releases/{name}:import lands here with
	// the wildcard capturing "name:import" (a colon cannot appear in a
	// release name); the handler splits the verb back off.
	mux.HandleFunc("POST /v1/releases/{name}", s.handleImport)
	mux.HandleFunc("GET /v1/releases/{name}/snapshot", s.handleSnapshotGet)
	mux.HandleFunc("GET /v1/releases/{name}/distance", s.handleDistance)
	mux.HandleFunc("POST /v1/releases/{name}/distance", s.handleDistance)
	mux.HandleFunc("POST /v1/releases/{name}/distances", s.handleDistances)
	mux.HandleFunc("POST /v1/releases/{name}/distances:stream", s.handleStream)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			switch r.URL.Path {
			case "/healthz", "/livez", "/readyz", "/metrics":
				// Probes keep answering so load balancers and operators
				// can watch the drain progress.
			default:
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, "server is draining; retry against another replica")
				return
			}
		}
		mux.ServeHTTP(w, r)
	})
}

// errorEnvelope is the JSON shape of every error response.
type errorEnvelope struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// createRequest is the POST /v1/releases body: a name, an optional
// admission-cap override, and the release spec shared with the CLI.
type createRequest struct {
	Name string `json:"name"`
	// MaxInflight overrides the server's default per-release admission
	// cap; 0 means unlimited, nil takes the default.
	MaxInflight *int `json:"max_inflight,omitempty"`
	// Coalesce overrides the per-release coalescing decision when the
	// server has a CoalesceWindow: false opts out, true forces it on
	// even for oracles without a sweep (their batch path still dedups
	// shared sources), and nil enables it exactly for sweep-capable
	// oracles. Ignored (no coalescing) when the window is 0.
	Coalesce *bool `json:"coalesce,omitempty"`
	dpgraph.ReleaseSpec
}

// releaseName restricts names to URL- and log-safe spellings.
var releaseName = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)

// releaseSummary is the JSON shape of one release in listings and
// creation responses.
type releaseSummary struct {
	Name      string `json:"name"`
	Status    string `json:"status"` // "ready" or "materializing"
	Mechanism string `json:"mechanism"`
	// N is the number of vertices served; valid queries are pairs in
	// [0, N).
	N     int     `json:"n,omitempty"`
	Index string  `json:"index,omitempty"`
	Gamma float64 `json:"gamma"`
	// Bound is the oracle's additive error bound at Gamma.
	Bound       float64         `json:"bound,omitempty"`
	Receipt     dpgraph.Receipt `json:"receipt,omitempty"`
	Created     time.Time       `json:"created"`
	MaxInflight int             `json:"max_inflight,omitempty"`
}

// gammaOf resolves a spec's bound failure probability (0 means the
// session default).
func gammaOf(spec dpgraph.ReleaseSpec) float64 {
	if spec.Gamma > 0 {
		return spec.Gamma
	}
	return dpgraph.DefaultGamma
}

func (s *Server) summarize(rel *release) releaseSummary {
	sum := releaseSummary{
		Name:        rel.name,
		Status:      "materializing",
		Mechanism:   rel.spec.Mechanism,
		Index:       rel.spec.Index,
		Gamma:       gammaOf(rel.spec),
		Created:     rel.created,
		MaxInflight: cap(rel.inflight),
	}
	select {
	case <-rel.ready:
		if rel.err != nil {
			return sum
		}
		sum.Status = "ready"
		sum.N = rel.oracle.N()
		sum.Bound = rel.oracle.Bound(sum.Gamma)
		sum.Receipt = rel.result.Info().Receipt
	default:
	}
	return sum
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req createRequest
	if err := dec.Decode(&req); err != nil {
		writeBodyError(w, err)
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		writeError(w, http.StatusBadRequest, "bad release spec: trailing content after the JSON object")
		return
	}
	if !releaseName.MatchString(req.Name) {
		writeError(w, http.StatusBadRequest, "bad release name %q: want 1-128 characters of [A-Za-z0-9._-]", req.Name)
		return
	}
	if req.Seed != 0 && !s.cfg.AllowSeeded {
		// A client who knows the seed can regenerate the noise draws and
		// subtract them from the answers, recovering the private weights.
		writeError(w, http.StatusForbidden, "seeded (deterministic) noise offers no privacy and is refused; start the server with -allow-seeded for tests and demos")
		return
	}
	maxInflight := s.cfg.MaxInflight
	if req.MaxInflight != nil {
		if *req.MaxInflight < 0 {
			writeError(w, http.StatusBadRequest, "max_inflight must be >= 0, got %d", *req.MaxInflight)
			return
		}
		maxInflight = *req.MaxInflight
	}
	rel, err := s.reg.reserve(req.Name, req.ReleaseSpec, maxInflight, s.cfg.MaxReleases)
	if errors.Is(err, errTooManyReleases) {
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	// Materialize outside the registry lock: the one budget-charging
	// step, potentially including an index build. Concurrent creates of
	// different releases proceed in parallel; a duplicate name conflicts
	// on the reservation above instead of double-spending.
	oracle, result, err := rel.spec.Materialize(s.g, dpgraph.PrivateWeights(s.private))
	if err != nil {
		rel.err = err
		close(rel.ready)
		s.reg.remove(rel)
		writeError(w, http.StatusBadRequest, "materializing %q: %v", rel.name, err)
		return
	}
	s.publish(rel, oracle, result, req.Coalesce)
	writeJSON(w, http.StatusCreated, s.summarize(rel))
}

// publish makes a reserved release servable: it wires the
// allocation-free batch entry, decides coalescing, and closes ready.
// The single publication path for created, imported, and boot-restored
// releases.
func (s *Server) publish(rel *release, oracle dpgraph.DistanceOracle, result dpgraph.Result, coalesce *bool) {
	rel.oracle, rel.result = oracle, result
	if bo, ok := oracle.(dpgraph.BatchOracle); ok {
		rel.into = bo.DistancesInto
	}
	if s.cfg.CoalesceWindow > 0 {
		on := false
		switch {
		case coalesce != nil:
			on = *coalesce
		default:
			// Auto: coalesce exactly when merged same-source queries can
			// ride a one-to-all sweep.
			if mst, ok := oracle.(interface{ MinSweepTargets() int }); ok {
				on = mst.MinSweepTargets() > 0
			}
		}
		if on {
			rel.co = newCoalescer(rel.batchInto, s.cfg.CoalesceWindow, s.cfg.CoalesceMaxPending, &rel.metrics)
		}
	}
	close(rel.ready)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	rels := s.reg.list()
	out := struct {
		Releases []releaseSummary `json:"releases"`
	}{Releases: make([]releaseSummary, 0, len(rels))}
	for _, rel := range rels {
		out.Releases = append(out.Releases, s.summarize(rel))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDelete unregisters a release, freeing its oracle and admission
// state. Budget the release already spent is spent forever — deletion
// is memory management, not a privacy refund.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rel, ok := s.reg.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown release %q", name)
		return
	}
	select {
	case <-rel.ready:
	default:
		// The creator will still publish into this entry; make the
		// client wait for that instead of racing it.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "release %q is still materializing", name)
		return
	}
	s.reg.remove(rel)
	if rel.co != nil {
		rel.co.stop() // flush waiters instead of stranding them on a dead release
	}
	writeJSON(w, http.StatusOK, struct {
		Deleted string `json:"deleted"`
	}{Deleted: name})
}

// Drain flushes every release's coalescer so in-flight waiters get
// their answers immediately; queries submitted afterwards bypass the
// shared batches. Call before shutting the HTTP server down.
func (s *Server) Drain() {
	for _, rel := range s.reg.list() {
		if rel.co != nil {
			rel.co.stop()
		}
	}
}

// resolve returns the named, ready release for a query handler,
// writing the error response (404 unknown or failed, 503 still
// materializing) itself when the request cannot proceed. Admission is
// separate (admitOrShed) so handlers parse their input before taking a
// slot — a slow-trickled request body must not hold serving capacity.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (*release, bool) {
	name := r.PathValue("name")
	rel, ok := s.reg.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown release %q", name)
		return nil, false
	}
	select {
	case <-rel.ready:
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "release %q is still materializing", name)
		return nil, false
	}
	if rel.err != nil {
		writeError(w, http.StatusNotFound, "release %q failed to materialize: %v", name, rel.err)
		return nil, false
	}
	return rel, true
}

// admitOrShed claims an admission slot, answering 429 when the release
// is at its cap. On true the caller owns one slot and must call
// rel.done().
func (s *Server) admitOrShed(w http.ResponseWriter, rel *release) bool {
	if rel.admit() {
		return true
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "release %q is at its admission cap (%d in flight)", rel.name, cap(rel.inflight))
	return false
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	rel, ok := s.resolve(w, r)
	if !ok {
		return
	}
	ws := getWorkspace()
	defer putWorkspace(ws)
	var sv, tv int
	var err error
	if r.Method == http.MethodGet {
		var fast bool
		if sv, tv, fast = scanQueryPair(r.URL.RawQuery); !fast {
			sv, tv, err = pairFromQuery(r)
		}
	} else {
		ws.body, err = readBodyLimit(ws.body[:0], r.Body, s.cfg.MaxBodyBytes)
		if err == nil {
			var fast bool
			if sv, tv, fast = parsePointBodyFast(ws.body); !fast {
				sv, tv, err = pairFromBytes(ws.body)
			}
		}
	}
	if err != nil {
		rel.metrics.errors.Add(1)
		writeBodyError(w, err)
		return
	}
	if !s.admitOrShed(w, rel) {
		return
	}
	defer rel.done()
	start := time.Now()
	var d float64
	if rel.co != nil && rel.inRange(sv, tv) {
		d, err = rel.co.distance(sv, tv)
	} else {
		d, err = rel.oracle.Distance(sv, tv)
	}
	if err != nil {
		rel.metrics.errors.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rel.metrics.observe(1, time.Since(start))
	ws.buf = appendPairAnswer(ws.buf[:0], sv, tv, d)
	setContentTypeJSON(w.Header())
	w.WriteHeader(http.StatusOK)
	w.Write(ws.buf) //nolint:errcheck // the response is already committed
}

// batchEnvelope mirrors the CLI query subcommand's -json envelope: one
// receipt for the release, then every answered pair.
type batchEnvelope struct {
	Mechanism string          `json:"mechanism"`
	Count     int             `json:"count"`
	Bound     float64         `json:"bound"`
	Gamma     float64         `json:"gamma"`
	Receipt   dpgraph.Receipt `json:"receipt"`
	Results   []PairAnswer    `json:"results"`
}

func (s *Server) handleDistances(w http.ResponseWriter, r *http.Request) {
	rel, ok := s.resolve(w, r)
	if !ok {
		return
	}
	ws := getWorkspace()
	defer putWorkspace(ws)
	// Read and parse before admission: a client trickling a large body
	// holds no serving slot while doing so.
	var err error
	ws.body, err = readBodyLimit(ws.body[:0], r.Body, s.cfg.MaxBodyBytes)
	if err != nil {
		rel.metrics.errors.Add(1)
		writeBodyError(w, err)
		return
	}
	var pairs []dpgraph.VertexPair
	var fast bool
	if ws.pairs, fast = parsePairsFast(ws.pairs[:0], ws.body); fast {
		pairs = ws.pairs
	} else {
		pairs, err = ParsePairs(ws.body)
	}
	if err == nil && len(pairs) == 0 {
		err = ErrNoPairs
	}
	if err != nil {
		rel.metrics.errors.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.admitOrShed(w, rel) {
		return
	}
	defer rel.done()
	start := time.Now()
	if cap(ws.vals) < len(pairs) {
		ws.vals = make([]float64, len(pairs))
	}
	values := ws.vals[:len(pairs)]
	// Small batches join the coalescer's shared sweeps alongside point
	// queries; larger ones amortize on their own through the release's
	// direct batch entry.
	if rel.co != nil && len(pairs) <= coalesceSmallBatch && rel.pairsInRange(pairs) {
		err = rel.co.submit(pairs, values)
	} else {
		err = rel.batchInto(pairs, values)
	}
	if err != nil {
		rel.metrics.errors.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rel.metrics.observe(len(pairs), time.Since(start))
	head, mid := rel.envelopeChunks()
	buf := append(ws.buf[:0], head...)
	buf = strconv.AppendInt(buf, int64(len(pairs)), 10)
	buf = append(buf, mid...)
	for i, p := range pairs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendPairAnswer(buf, p.S, p.T, values[i])
	}
	buf = append(buf, ']', '}')
	ws.buf = buf
	setContentTypeJSON(w.Header())
	w.WriteHeader(http.StatusOK)
	w.Write(buf) //nolint:errcheck // the response is already committed
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Releases int    `json:"releases"`
	}{Status: "ok", Releases: len(s.reg.list())})
}

// handleLivez is pure process liveness: it answers ok as long as the
// process can serve HTTP at all, draining or not. Orchestrators restart
// on livez failures, so it must never flip during a graceful shutdown.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "alive"})
}

// readyzResponse is the /readyz body. Releases names every ready
// release so a coordinator probing readiness also learns the replica's
// serving set from the same request.
type readyzResponse struct {
	Status string `json:"status"` // "ready", "draining", or "materializing"
	// Releases lists the ready (queryable) releases.
	Releases []string `json:"releases"`
	// Materializing lists releases still building; non-empty only on a
	// 503 "materializing" answer.
	Materializing []string `json:"materializing,omitempty"`
}

// handleReadyz is the routing-readiness probe: 200 exactly when every
// registered release is materialized and the server is not draining.
// Draining flips it to 503 before the listener closes, so health-probed
// load balancers stop sending ahead of the actual shutdown; a replica
// mid-materialization likewise reports not-ready so coordinators do not
// route queries it would answer with 503s.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := readyzResponse{Status: "ready", Releases: []string{}}
	for _, rel := range s.reg.list() {
		select {
		case <-rel.ready:
			if rel.err == nil {
				resp.Releases = append(resp.Releases, rel.name)
			}
		default:
			resp.Materializing = append(resp.Materializing, rel.name)
		}
	}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	case len(resp.Materializing) > 0:
		resp.Status = "materializing"
		status = http.StatusServiceUnavailable
	}
	if status != http.StatusOK {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

// StartDrain begins a graceful shutdown: /readyz flips to 503 and new
// requests are refused with 503 + Retry-After while in-flight ones run
// to completion. Callers should keep the listener open for a grace
// period afterwards so probes observe the flip, then call Drain and
// shut the HTTP server down.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// metricsTotals sums the countable columns across releases; latency
// quantiles do not sum and stay per-release.
type metricsTotals struct {
	Requests    uint64 `json:"requests"`
	Queries     uint64 `json:"queries"`
	Errors      uint64 `json:"errors"`
	Rejected429 uint64 `json:"rejected_429"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// CoalescedShared counts pairs answered through shared (multi-
	// request) coalesced batches across all releases.
	CoalescedShared uint64 `json:"coalesced_shared"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out := struct {
		UptimeSeconds float64       `json:"uptime_seconds"`
		Totals        metricsTotals `json:"totals"`
		// BufferPool tracks the shared request-workspace pool: gets are
		// checkouts, news are checkouts the pool could not serve from
		// cache (each news is one workspace allocation).
		BufferPool struct {
			Gets uint64 `json:"gets"`
			News uint64 `json:"news"`
		} `json:"buffer_pool"`
		Releases map[string]metricsSnapshot `json:"releases"`
	}{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Releases:      map[string]metricsSnapshot{},
	}
	out.BufferPool.Gets, out.BufferPool.News = workspaceCounters()
	for _, rel := range s.reg.list() {
		snap := rel.metrics.snapshot(rel.cacheStats())
		out.Releases[rel.name] = snap
		out.Totals.Requests += snap.Requests
		out.Totals.Queries += snap.Queries
		out.Totals.Errors += snap.Errors
		out.Totals.Rejected429 += snap.Rejected429
		out.Totals.CacheHits += snap.CacheHits
		out.Totals.CacheMisses += snap.CacheMisses
		out.Totals.CoalescedShared += snap.Coalesce.SharedQueries
	}
	writeJSON(w, http.StatusOK, out)
}

// pairFromQuery reads s and t from URL query parameters.
func pairFromQuery(r *http.Request) (s, t int, err error) {
	q := r.URL.Query()
	s, err1 := strconv.Atoi(q.Get("s"))
	t, err2 := strconv.Atoi(q.Get("t"))
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("want integer query parameters s and t, got s=%q t=%q", q.Get("s"), q.Get("t"))
	}
	return s, t, nil
}

// pairFromBytes reads one {"s":..,"t":..} object from an already-read
// request body — the strict fallback behind parsePointBodyFast, owning
// all error reporting. Both keys must be present: an omitted endpoint
// would otherwise silently default to vertex 0 and answer the wrong
// query.
func pairFromBytes(data []byte) (s, t int, err error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p struct {
		S *int `json:"s"`
		T *int `json:"t"`
	}
	if err := dec.Decode(&p); err != nil {
		return 0, 0, fmt.Errorf("bad pair body: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return 0, 0, fmt.Errorf("bad pair body: trailing content after the JSON object")
	}
	if p.S == nil || p.T == nil {
		return 0, 0, fmt.Errorf(`bad pair body: want both "s" and "t"`)
	}
	return *p.S, *p.T, nil
}

// writeBodyError maps a request decoding failure onto its status:
// 413 for oversized bodies, 400 otherwise.
func writeBodyError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		return
	}
	var overLimit *bodyTooLargeError
	if errors.As(err, &overLimit) {
		writeError(w, http.StatusRequestEntityTooLarge, "%v", overLimit)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}
