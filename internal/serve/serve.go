// Package serve is the HTTP distance-serving layer over the dpgraph
// release-once/query-many machinery: a long-running daemon materializes
// named, independently budgeted releases (each spending its privacy
// budget exactly once) and then answers unboundedly many point and
// batch distance queries from the releases' oracles as free
// post-processing — the serving-side realization of the paper's central
// economic property.
//
// Endpoints:
//
//	POST   /v1/releases                    materialize a release from a mechanism+args spec
//	GET    /v1/releases                    list releases with receipts and bounds
//	DELETE /v1/releases/{name}             unregister a release (frees memory, refunds nothing)
//	GET    /v1/releases/{name}/distance    one s-t query (?s=&t=)
//	POST   /v1/releases/{name}/distance    one s-t query ({"s":..,"t":..})
//	POST   /v1/releases/{name}/distances   batch query (text lines or JSON array of pairs)
//	GET    /v1/releases/{name}/snapshot    download the sealed snapshot artifact (receipt-hash ETag)
//	POST   /v1/releases/{name}:import      register a release from an uploaded snapshot (zero budget)
//	GET    /healthz                        liveness
//	GET    /metrics                        query/cache/latency counters per release
//
// Every error is a JSON envelope {"error": "..."}; unreachable pairs
// use the same null+unreachable convention as the CLI's -json output.
// Request bodies are size-limited, and each release sheds load past its
// max-inflight admission cap with 429 responses.
//
// Privacy posture: queries are free post-processing, but every POST
// /v1/releases spends fresh budget over the same private weights —
// cumulative privacy loss grows with each release, so the registry is
// capped (Config.MaxReleases) and specs asking for seeded
// (deterministic, hence privacy-free) noise are refused unless the
// operator opted in with Config.AllowSeeded.
package serve

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"time"

	"repro/dpgraph"
)

// Config carries the server-wide serving limits.
type Config struct {
	// MaxBodyBytes bounds any request body; <= 0 takes
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxInflight is the default per-release admission cap (concurrent
	// in-flight requests per release); a release spec may override it,
	// and 0 means unlimited.
	MaxInflight int
	// MaxReleases caps the registry size (each release retains its
	// oracle and any index forever, and each create spends fresh
	// budget over the same private weights, so the cap also bounds
	// cumulative privacy loss and memory); <= 0 takes
	// DefaultMaxReleases. Deleting a release frees its slot but never
	// refunds budget already spent.
	MaxReleases int
	// AllowSeeded permits specs carrying a nonzero Seed. Deterministic
	// noise is reproducible by anyone who knows the seed and therefore
	// offers NO privacy; leave this false outside tests and demos.
	AllowSeeded bool
	// MaxSnapshotBytes bounds uploaded snapshot artifacts on the
	// :import endpoint; <= 0 takes DefaultMaxSnapshotBytes.
	MaxSnapshotBytes int64
	// SigningKey, when set, signs every snapshot the server exports so
	// replicas can verify provenance.
	SigningKey ed25519.PrivateKey
	// VerifyKey, when set, requires every imported or boot-restored
	// snapshot to carry a signature verifying against it.
	VerifyKey ed25519.PublicKey
}

// DefaultMaxBodyBytes bounds request bodies when Config leaves
// MaxBodyBytes unset: enough for a ~1M-pair JSON batch, small enough
// that a hostile client cannot buffer unbounded memory per request.
const DefaultMaxBodyBytes = 32 << 20

// DefaultMaxReleases bounds the registry when Config leaves
// MaxReleases unset.
const DefaultMaxReleases = 64

// Server answers distance queries over a registry of materialized
// releases, all sharing one public topology and private weight vector.
// Each release runs in its own independently budgeted session. Safe for
// concurrent use; construct with New.
type Server struct {
	g       *dpgraph.Graph
	private []float64
	cfg     Config
	reg     registry
	started time.Time
}

// New returns a server holding the public topology and the private
// weights from which POST /v1/releases materializes releases.
func New(topology *dpgraph.Graph, private []float64, cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxReleases <= 0 {
		cfg.MaxReleases = DefaultMaxReleases
	}
	return &Server{g: topology, private: private, cfg: cfg, started: time.Now()}
}

// Handler returns the server's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/releases", s.handleList)
	mux.HandleFunc("POST /v1/releases", s.handleCreate)
	mux.HandleFunc("DELETE /v1/releases/{name}", s.handleDelete)
	// The import spelling /v1/releases/{name}:import lands here with
	// the wildcard capturing "name:import" (a colon cannot appear in a
	// release name); the handler splits the verb back off.
	mux.HandleFunc("POST /v1/releases/{name}", s.handleImport)
	mux.HandleFunc("GET /v1/releases/{name}/snapshot", s.handleSnapshotGet)
	mux.HandleFunc("GET /v1/releases/{name}/distance", s.handleDistance)
	mux.HandleFunc("POST /v1/releases/{name}/distance", s.handleDistance)
	mux.HandleFunc("POST /v1/releases/{name}/distances", s.handleDistances)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	})
	return mux
}

// errorEnvelope is the JSON shape of every error response.
type errorEnvelope struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// createRequest is the POST /v1/releases body: a name, an optional
// admission-cap override, and the release spec shared with the CLI.
type createRequest struct {
	Name string `json:"name"`
	// MaxInflight overrides the server's default per-release admission
	// cap; 0 means unlimited, nil takes the default.
	MaxInflight *int `json:"max_inflight,omitempty"`
	dpgraph.ReleaseSpec
}

// releaseName restricts names to URL- and log-safe spellings.
var releaseName = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)

// releaseSummary is the JSON shape of one release in listings and
// creation responses.
type releaseSummary struct {
	Name      string `json:"name"`
	Status    string `json:"status"` // "ready" or "materializing"
	Mechanism string `json:"mechanism"`
	// N is the number of vertices served; valid queries are pairs in
	// [0, N).
	N     int     `json:"n,omitempty"`
	Index string  `json:"index,omitempty"`
	Gamma float64 `json:"gamma"`
	// Bound is the oracle's additive error bound at Gamma.
	Bound       float64         `json:"bound,omitempty"`
	Receipt     dpgraph.Receipt `json:"receipt,omitempty"`
	Created     time.Time       `json:"created"`
	MaxInflight int             `json:"max_inflight,omitempty"`
}

// gammaOf resolves a spec's bound failure probability (0 means the
// session default).
func gammaOf(spec dpgraph.ReleaseSpec) float64 {
	if spec.Gamma > 0 {
		return spec.Gamma
	}
	return dpgraph.DefaultGamma
}

func (s *Server) summarize(rel *release) releaseSummary {
	sum := releaseSummary{
		Name:        rel.name,
		Status:      "materializing",
		Mechanism:   rel.spec.Mechanism,
		Index:       rel.spec.Index,
		Gamma:       gammaOf(rel.spec),
		Created:     rel.created,
		MaxInflight: cap(rel.inflight),
	}
	select {
	case <-rel.ready:
		if rel.err != nil {
			return sum
		}
		sum.Status = "ready"
		sum.N = rel.oracle.N()
		sum.Bound = rel.oracle.Bound(sum.Gamma)
		sum.Receipt = rel.result.Info().Receipt
	default:
	}
	return sum
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req createRequest
	if err := dec.Decode(&req); err != nil {
		writeBodyError(w, err)
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		writeError(w, http.StatusBadRequest, "bad release spec: trailing content after the JSON object")
		return
	}
	if !releaseName.MatchString(req.Name) {
		writeError(w, http.StatusBadRequest, "bad release name %q: want 1-128 characters of [A-Za-z0-9._-]", req.Name)
		return
	}
	if req.Seed != 0 && !s.cfg.AllowSeeded {
		// A client who knows the seed can regenerate the noise draws and
		// subtract them from the answers, recovering the private weights.
		writeError(w, http.StatusForbidden, "seeded (deterministic) noise offers no privacy and is refused; start the server with -allow-seeded for tests and demos")
		return
	}
	maxInflight := s.cfg.MaxInflight
	if req.MaxInflight != nil {
		if *req.MaxInflight < 0 {
			writeError(w, http.StatusBadRequest, "max_inflight must be >= 0, got %d", *req.MaxInflight)
			return
		}
		maxInflight = *req.MaxInflight
	}
	rel, err := s.reg.reserve(req.Name, req.ReleaseSpec, maxInflight, s.cfg.MaxReleases)
	if errors.Is(err, errTooManyReleases) {
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	// Materialize outside the registry lock: the one budget-charging
	// step, potentially including an index build. Concurrent creates of
	// different releases proceed in parallel; a duplicate name conflicts
	// on the reservation above instead of double-spending.
	oracle, result, err := rel.spec.Materialize(s.g, dpgraph.PrivateWeights(s.private))
	if err != nil {
		rel.err = err
		close(rel.ready)
		s.reg.remove(rel)
		writeError(w, http.StatusBadRequest, "materializing %q: %v", rel.name, err)
		return
	}
	rel.oracle, rel.result = oracle, result
	close(rel.ready)
	writeJSON(w, http.StatusCreated, s.summarize(rel))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	rels := s.reg.list()
	out := struct {
		Releases []releaseSummary `json:"releases"`
	}{Releases: make([]releaseSummary, 0, len(rels))}
	for _, rel := range rels {
		out.Releases = append(out.Releases, s.summarize(rel))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDelete unregisters a release, freeing its oracle and admission
// state. Budget the release already spent is spent forever — deletion
// is memory management, not a privacy refund.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rel, ok := s.reg.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown release %q", name)
		return
	}
	select {
	case <-rel.ready:
	default:
		// The creator will still publish into this entry; make the
		// client wait for that instead of racing it.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "release %q is still materializing", name)
		return
	}
	s.reg.remove(rel)
	writeJSON(w, http.StatusOK, struct {
		Deleted string `json:"deleted"`
	}{Deleted: name})
}

// resolve returns the named, ready release for a query handler,
// writing the error response (404 unknown or failed, 503 still
// materializing) itself when the request cannot proceed. Admission is
// separate (admitOrShed) so handlers parse their input before taking a
// slot — a slow-trickled request body must not hold serving capacity.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (*release, bool) {
	name := r.PathValue("name")
	rel, ok := s.reg.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown release %q", name)
		return nil, false
	}
	select {
	case <-rel.ready:
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "release %q is still materializing", name)
		return nil, false
	}
	if rel.err != nil {
		writeError(w, http.StatusNotFound, "release %q failed to materialize: %v", name, rel.err)
		return nil, false
	}
	return rel, true
}

// admitOrShed claims an admission slot, answering 429 when the release
// is at its cap. On true the caller owns one slot and must call
// rel.done().
func (s *Server) admitOrShed(w http.ResponseWriter, rel *release) bool {
	if rel.admit() {
		return true
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "release %q is at its admission cap (%d in flight)", rel.name, cap(rel.inflight))
	return false
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	rel, ok := s.resolve(w, r)
	if !ok {
		return
	}
	var sv, tv int
	var err error
	if r.Method == http.MethodGet {
		sv, tv, err = pairFromQuery(r)
	} else {
		sv, tv, err = pairFromBody(w, r, s.cfg.MaxBodyBytes)
	}
	if err != nil {
		rel.metrics.errors.Add(1)
		writeBodyError(w, err)
		return
	}
	if !s.admitOrShed(w, rel) {
		return
	}
	defer rel.done()
	start := time.Now()
	d, err := rel.oracle.Distance(sv, tv)
	if err != nil {
		rel.metrics.errors.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rel.metrics.observe(1, time.Since(start))
	writeJSON(w, http.StatusOK, PairAnswer{S: sv, T: tv, Value: d})
}

// batchEnvelope mirrors the CLI query subcommand's -json envelope: one
// receipt for the release, then every answered pair.
type batchEnvelope struct {
	Mechanism string          `json:"mechanism"`
	Count     int             `json:"count"`
	Bound     float64         `json:"bound"`
	Gamma     float64         `json:"gamma"`
	Receipt   dpgraph.Receipt `json:"receipt"`
	Results   []PairAnswer    `json:"results"`
}

func (s *Server) handleDistances(w http.ResponseWriter, r *http.Request) {
	rel, ok := s.resolve(w, r)
	if !ok {
		return
	}
	// Read and parse before admission: a client trickling a large body
	// holds no serving slot while doing so.
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		rel.metrics.errors.Add(1)
		writeBodyError(w, err)
		return
	}
	pairs, err := ParsePairs(data)
	if err == nil && len(pairs) == 0 {
		err = ErrNoPairs
	}
	if err != nil {
		rel.metrics.errors.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.admitOrShed(w, rel) {
		return
	}
	defer rel.done()
	start := time.Now()
	values, err := rel.oracle.Distances(pairs)
	if err != nil {
		rel.metrics.errors.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rel.metrics.observe(len(pairs), time.Since(start))
	gamma := gammaOf(rel.spec)
	out := batchEnvelope{
		Mechanism: rel.spec.Mechanism,
		Count:     len(pairs),
		Bound:     rel.oracle.Bound(gamma),
		Gamma:     gamma,
		Receipt:   rel.result.Info().Receipt,
		Results:   make([]PairAnswer, len(pairs)),
	}
	for i, p := range pairs {
		out.Results[i] = PairAnswer{S: p.S, T: p.T, Value: values[i]}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Releases int    `json:"releases"`
	}{Status: "ok", Releases: len(s.reg.list())})
}

// metricsTotals sums the countable columns across releases; latency
// quantiles do not sum and stay per-release.
type metricsTotals struct {
	Requests    uint64 `json:"requests"`
	Queries     uint64 `json:"queries"`
	Errors      uint64 `json:"errors"`
	Rejected429 uint64 `json:"rejected_429"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out := struct {
		UptimeSeconds float64                    `json:"uptime_seconds"`
		Totals        metricsTotals              `json:"totals"`
		Releases      map[string]metricsSnapshot `json:"releases"`
	}{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Releases:      map[string]metricsSnapshot{},
	}
	for _, rel := range s.reg.list() {
		snap := rel.metrics.snapshot(rel.cacheStats())
		out.Releases[rel.name] = snap
		out.Totals.Requests += snap.Requests
		out.Totals.Queries += snap.Queries
		out.Totals.Errors += snap.Errors
		out.Totals.Rejected429 += snap.Rejected429
		out.Totals.CacheHits += snap.CacheHits
		out.Totals.CacheMisses += snap.CacheMisses
	}
	writeJSON(w, http.StatusOK, out)
}

// pairFromQuery reads s and t from URL query parameters.
func pairFromQuery(r *http.Request) (s, t int, err error) {
	q := r.URL.Query()
	s, err1 := strconv.Atoi(q.Get("s"))
	t, err2 := strconv.Atoi(q.Get("t"))
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("want integer query parameters s and t, got s=%q t=%q", q.Get("s"), q.Get("t"))
	}
	return s, t, nil
}

// pairFromBody reads one {"s":..,"t":..} object from the request body.
// Both keys must be present: an omitted endpoint would otherwise
// silently default to vertex 0 and answer the wrong query.
func pairFromBody(w http.ResponseWriter, r *http.Request, limit int64) (s, t int, err error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	var p struct {
		S *int `json:"s"`
		T *int `json:"t"`
	}
	if err := dec.Decode(&p); err != nil {
		return 0, 0, fmt.Errorf("bad pair body: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return 0, 0, fmt.Errorf("bad pair body: trailing content after the JSON object")
	}
	if p.S == nil || p.T == nil {
		return 0, 0, fmt.Errorf(`bad pair body: want both "s" and "t"`)
	}
	return *p.S, *p.T, nil
}

// writeBodyError maps a request decoding failure onto its status:
// 413 for oversized bodies, 400 otherwise.
func writeBodyError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}
