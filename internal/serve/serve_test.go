package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/dpgraph"
)

// newTestServer returns a server over a 4x4 grid with deterministic
// weights, plus its httptest front.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	g := dpgraph.Grid(4)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + float64(i%4)
	}
	cfg.AllowSeeded = true // the fixtures pin answers with seeded specs
	s := New(g, w, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// createRelease POSTs a release spec and fails the test on a non-201.
func createRelease(t *testing.T, ts *httptest.Server, body string) releaseSummary {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/releases", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status %d: %s", body, resp.StatusCode, data)
	}
	var sum releaseSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("bad create response: %v\n%s", err, data)
	}
	return sum
}

// get fetches a URL and returns status and body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// post sends a body and returns status and response body.
func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// TestServeEndToEnd is the release -> point query -> batch query ->
// listing -> metrics -> shutdown round trip over real HTTP.
func TestServeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	sum := createRelease(t, ts, `{"name":"main","mechanism":"release","epsilon":2,"seed":7}`)
	if sum.Status != "ready" || sum.Mechanism != "release" || sum.N != 16 || sum.Bound <= 0 {
		t.Fatalf("create summary = %+v", sum)
	}
	if sum.Receipt.Epsilon != 2 {
		t.Errorf("receipt = %+v, want epsilon 2", sum.Receipt)
	}

	// Point query, GET form.
	status, data := get(t, ts.URL+"/v1/releases/main/distance?s=0&t=15")
	if status != http.StatusOK {
		t.Fatalf("distance: status %d: %s", status, data)
	}
	var ans struct {
		S, T  int
		Value float64
	}
	if err := json.Unmarshal(data, &ans); err != nil {
		t.Fatalf("bad answer: %v\n%s", err, data)
	}
	if ans.S != 0 || ans.T != 15 || ans.Value <= 0 {
		t.Errorf("answer = %+v", ans)
	}

	// Point query, POST form, must agree (same release, post-processing).
	status, data2 := post(t, ts.URL+"/v1/releases/main/distance", `{"s":0,"t":15}`)
	if status != http.StatusOK || !bytes.Equal(data, data2) {
		t.Errorf("POST distance: status %d, body %s, want %s", status, data2, data)
	}

	// Batch query in all three input forms.
	var first []byte
	for _, body := range []string{
		`[[0,15],[1,2],[3,3]]`,
		`[{"s":0,"t":15},{"s":1,"t":2},{"s":3,"t":3}]`,
		"0 15\n1 2\n3 3\n",
	} {
		status, data := post(t, ts.URL+"/v1/releases/main/distances", body)
		if status != http.StatusOK {
			t.Fatalf("batch %q: status %d: %s", body, status, data)
		}
		var env batchEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("bad batch envelope: %v\n%s", err, data)
		}
		if env.Mechanism != "release" || env.Count != 3 || env.Bound <= 0 || len(env.Results) != 3 {
			t.Errorf("batch envelope = %+v", env)
		}
		if env.Results[0].Value != ans.Value {
			t.Errorf("batch (0,15) = %g, point query said %g", env.Results[0].Value, ans.Value)
		}
		if env.Results[2].Value != 0 {
			t.Errorf("s == t answer = %g, want 0", env.Results[2].Value)
		}
		if first == nil {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Errorf("input form %q answered differently:\n%s\nvs\n%s", body, data, first)
		}
	}

	// A second, independently budgeted release coexists.
	createRelease(t, ts, `{"name":"tree.v2","mechanism":"apsd","seed":9,"gamma":0.01}`)
	status, data = get(t, ts.URL+"/v1/releases")
	var list struct {
		Releases []releaseSummary `json:"releases"`
	}
	if status != http.StatusOK || json.Unmarshal(data, &list) != nil || len(list.Releases) != 2 {
		t.Fatalf("list: status %d: %s", status, data)
	}
	if list.Releases[0].Name != "main" || list.Releases[1].Name != "tree.v2" {
		t.Errorf("listing order = %+v", list.Releases)
	}
	if list.Releases[1].Gamma != 0.01 {
		t.Errorf("tree.v2 gamma = %g, want the spec's 0.01", list.Releases[1].Gamma)
	}

	// Health and metrics.
	status, data = get(t, ts.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(string(data), `"ok"`) {
		t.Errorf("healthz: status %d: %s", status, data)
	}
	status, data = get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d: %s", status, data)
	}
	var metrics struct {
		Totals   metricsSnapshot            `json:"totals"`
		Releases map[string]metricsSnapshot `json:"releases"`
	}
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatalf("bad metrics: %v\n%s", err, data)
	}
	main := metrics.Releases["main"]
	// 2 point queries + 3 batches of 3 pairs.
	if main.Requests != 5 || main.Queries != 11 {
		t.Errorf("main metrics = %+v, want 5 requests / 11 queries", main)
	}
	if main.LatencyNS.P50 <= 0 || main.LatencyNS.P99 < main.LatencyNS.P50 {
		t.Errorf("latency quantiles = %+v", main.LatencyNS)
	}
	if metrics.Totals.Queries != main.Queries+metrics.Releases["tree.v2"].Queries {
		t.Errorf("totals %+v do not add up", metrics.Totals)
	}

	// Graceful shutdown: close the server, in-flight work already done.
	ts.Close()
	if _, err := http.Get(ts.URL + "/healthz"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// TestServeIndexed serves a contraction-hierarchy release and checks
// indexed answers match the unindexed release from the same seed, and
// that cache hits surface in /metrics.
func TestServeIndexed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createRelease(t, ts, `{"name":"plain","mechanism":"release","seed":5}`)
	sum := createRelease(t, ts, `{"name":"fast","mechanism":"release","seed":5,"index":"ch"}`)
	if sum.Index != "ch" {
		t.Fatalf("summary = %+v", sum)
	}
	for i := 0; i < 3; i++ { // repeats drive the result cache
		for s := 0; s < 16; s += 3 {
			statusA, a := get(t, fmt.Sprintf("%s/v1/releases/plain/distance?s=%d&t=15", ts.URL, s))
			statusB, b := get(t, fmt.Sprintf("%s/v1/releases/fast/distance?s=%d&t=15", ts.URL, s))
			if statusA != 200 || statusB != 200 {
				t.Fatalf("statuses %d %d", statusA, statusB)
			}
			var va, vb struct{ Value float64 }
			if json.Unmarshal(a, &va) != nil || json.Unmarshal(b, &vb) != nil {
				t.Fatal("bad answers", string(a), string(b))
			}
			if diff := va.Value - vb.Value; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("s=%d: unindexed %g vs ch %g", s, va.Value, vb.Value)
			}
		}
	}
	_, data := get(t, ts.URL+"/metrics")
	var metrics struct {
		Releases map[string]metricsSnapshot `json:"releases"`
	}
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatal(err)
	}
	fast := metrics.Releases["fast"]
	if fast.CacheHits == 0 {
		t.Errorf("indexed release reports no cache hits after repeated pairs: %+v", fast)
	}
	if plain := metrics.Releases["plain"]; plain.CacheHits != 0 || plain.CacheMisses != 0 {
		t.Errorf("unindexed release reports cache traffic: %+v", plain)
	}
}

// TestServeUnreachable checks the null+unreachable convention on a
// disconnected topology.
func TestServeUnreachable(t *testing.T) {
	g := dpgraph.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	s := New(g, []float64{1, 1}, Config{AllowSeeded: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	createRelease(t, ts, `{"name":"split","mechanism":"release","seed":3}`)

	status, data := get(t, ts.URL+"/v1/releases/split/distance?s=0&t=3")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var ans struct {
		Value       *float64 `json:"value"`
		Unreachable bool     `json:"unreachable"`
	}
	if err := json.Unmarshal(data, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Value != nil || !ans.Unreachable {
		t.Errorf("disconnected pair = %s, want null value + unreachable", data)
	}

	status, data = post(t, ts.URL+"/v1/releases/split/distances", `[[0,3],[0,1]]`)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, data)
	}
	var env struct {
		Results []struct {
			Value       *float64 `json:"value"`
			Unreachable bool     `json:"unreachable"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if !env.Results[0].Unreachable || env.Results[0].Value != nil {
		t.Errorf("batch disconnected pair = %+v", env.Results[0])
	}
	if env.Results[1].Unreachable || env.Results[1].Value == nil {
		t.Errorf("batch connected pair = %+v", env.Results[1])
	}
}

// TestServeHandlerErrors sweeps the error envelope paths.
func TestServeHandlerErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createRelease(t, ts, `{"name":"main","mechanism":"release","seed":7}`)

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/releases", `{bad json`, 400},
		{"POST", "/v1/releases", `{"name":"x","mechanism":"release"} extra`, 400},
		{"POST", "/v1/releases", `{"name":"x","mechanism":"release","bogus":1}`, 400},
		{"POST", "/v1/releases", `{"name":"bad name!","mechanism":"release"}`, 400},
		{"POST", "/v1/releases", `{"name":"x","mechanism":"nope"}`, 400},
		{"POST", "/v1/releases", `{"name":"x","mechanism":"mst"}`, 400},
		{"POST", "/v1/releases", `{"name":"x","mechanism":"bounded"}`, 400},
		{"POST", "/v1/releases", `{"name":"x","mechanism":"release","index":"bogus"}`, 400},
		{"POST", "/v1/releases", `{"name":"x","mechanism":"release","max_inflight":-1}`, 400},
		{"POST", "/v1/releases", `{"name":"main","mechanism":"release"}`, 409},
		{"GET", "/v1/releases/nope/distance?s=0&t=1", "", 404},
		{"POST", "/v1/releases/nope/distances", `[[0,1]]`, 404},
		{"GET", "/v1/releases/main/distance?s=0", "", 400},
		{"GET", "/v1/releases/main/distance?s=x&t=1", "", 400},
		{"GET", "/v1/releases/main/distance?s=0&t=99", "", 400},
		{"POST", "/v1/releases/main/distance", `{"src":0,"t":1}`, 400},
		{"POST", "/v1/releases/main/distance", `{"t":1}`, 400}, // omitted key must not default to vertex 0
		{"POST", "/v1/releases/main/distance", `{"s":0}`, 400},
		{"POST", "/v1/releases/main/distance", `{}`, 400},
		{"POST", "/v1/releases/main/distance", `{"s":0,"t":1}{"s":1,"t":2}`, 400},
		{"POST", "/v1/releases/main/distances", ``, 400},
		{"POST", "/v1/releases/main/distances", `[]`, 400},
		{"POST", "/v1/releases/main/distances", `[[0,1]] trailing`, 400},
		{"POST", "/v1/releases/main/distances", `[{"s":0,"t":1}] [[1,2]]`, 400},
		{"POST", "/v1/releases/main/distances", `[[0,99]]`, 400},
		{"POST", "/v1/releases/main/distances", `[[0,1,2]]`, 400},
		{"GET", "/v1/nothing", "", 404},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s %q: status %d, want %d: %s", c.method, c.path, c.body, resp.StatusCode, c.want, data)
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(data, &env); err != nil || env.Error == "" {
			t.Errorf("%s %s: error body not a JSON envelope: %s", c.method, c.path, data)
		}
	}
}

// TestServeBodyLimit rejects oversized bodies with 413.
func TestServeBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	createRelease(t, ts, `{"name":"main","mechanism":"release","seed":7}`)
	var big strings.Builder
	big.WriteString("[")
	for i := 0; i < 200; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		big.WriteString("[0,1]")
	}
	big.WriteString("]")
	status, data := post(t, ts.URL+"/v1/releases/main/distances", big.String())
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d: %s", status, data)
	}
	status, data = post(t, ts.URL+"/v1/releases", `{"name":"y","mechanism":"release","index":"`+strings.Repeat("a", 300)+`"}`)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized spec: status %d: %s", status, data)
	}
}

// TestServeSeedRefused: a network client must not be able to choose
// deterministic (privacy-free) noise unless the operator opted in.
func TestServeSeedRefused(t *testing.T) {
	g := dpgraph.Grid(4)
	w := make([]float64, g.M())
	s := New(g, w, Config{}) // AllowSeeded defaults off
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	status, data := post(t, ts.URL+"/v1/releases", `{"name":"x","mechanism":"release","seed":1}`)
	if status != http.StatusForbidden || !strings.Contains(string(data), "allow-seeded") {
		t.Errorf("seeded spec: status %d: %s", status, data)
	}
	// Crypto-noise specs pass, and the refused name was not burned.
	if status, data := post(t, ts.URL+"/v1/releases", `{"name":"x","mechanism":"release"}`); status != http.StatusCreated {
		t.Errorf("crypto spec: status %d: %s", status, data)
	}
}

// TestServeReleaseCapAndDelete: the registry cap sheds creates with
// 429 until DELETE frees a slot; deleted names answer 404 and can be
// re-created.
func TestServeReleaseCapAndDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxReleases: 2})
	createRelease(t, ts, `{"name":"a","mechanism":"release","seed":1}`)
	createRelease(t, ts, `{"name":"b","mechanism":"release","seed":2}`)

	status, data := post(t, ts.URL+"/v1/releases", `{"name":"c","mechanism":"release","seed":3}`)
	if status != http.StatusTooManyRequests || !strings.Contains(string(data), "cap 2") {
		t.Fatalf("create past cap: status %d: %s", status, data)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/releases/a", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"deleted": "a"`) {
		t.Fatalf("delete: status %d: %s", resp.StatusCode, data)
	}
	if status, data := get(t, ts.URL+"/v1/releases/a/distance?s=0&t=1"); status != http.StatusNotFound {
		t.Errorf("deleted release still answers: status %d: %s", status, data)
	}
	// The freed slot admits a new release, including reusing the name.
	createRelease(t, ts, `{"name":"a","mechanism":"release","seed":4}`)

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/releases/nope", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete unknown: status %d", resp.StatusCode)
	}
}

// TestServeRemoveByIdentity: a stalled deleter holding a stale release
// pointer must not delete a newer release that reused the name.
func TestServeRemoveByIdentity(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	old, err := s.reg.reserve("foo", dpgraph.ReleaseSpec{Mechanism: "release"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	close(old.ready)
	s.reg.remove(old)
	fresh, err := s.reg.reserve("foo", dpgraph.ReleaseSpec{Mechanism: "release"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.reg.remove(old) // stale pointer: must be a no-op now
	got, ok := s.reg.lookup("foo")
	if !ok || got != fresh {
		t.Fatalf("stale remove deleted the recreated release (ok=%v)", ok)
	}
	s.reg.remove(fresh)
	if _, ok := s.reg.lookup("foo"); ok {
		t.Fatal("identity-matched remove left the release registered")
	}
}

// TestServeMaterializingRelease: a release whose materialization has
// not finished lists as "materializing", serves 503 to queries, and
// reports zero metrics — none of which may touch its unset oracle.
func TestServeMaterializingRelease(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if _, err := s.reg.reserve("pending", dpgraph.ReleaseSpec{Mechanism: "release"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	status, data := get(t, ts.URL+"/v1/releases")
	if status != http.StatusOK || !strings.Contains(string(data), `"materializing"`) {
		t.Errorf("listing: status %d: %s", status, data)
	}
	status, data = get(t, ts.URL+"/v1/releases/pending/distance?s=0&t=1")
	if status != http.StatusServiceUnavailable {
		t.Errorf("query on materializing release: status %d, want 503: %s", status, data)
	}
	status, data = get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Errorf("metrics: status %d: %s", status, data)
	}
	var metrics struct {
		Releases map[string]metricsSnapshot `json:"releases"`
	}
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatal(err)
	}
	if snap := metrics.Releases["pending"]; snap.CacheHits != 0 || snap.Requests != 0 {
		t.Errorf("materializing release metrics = %+v", snap)
	}
}

// blockingOracle parks every Distance call until released; it stands in
// for a slow search so admission control is observable.
type blockingOracle struct {
	entered chan struct{}
	release chan struct{}
}

func (o *blockingOracle) Distance(s, t int) (float64, error) {
	o.entered <- struct{}{}
	<-o.release
	return 1, nil
}

func (o *blockingOracle) Distances(pairs []dpgraph.VertexPair) ([]float64, error) {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		d, err := o.Distance(p.S, p.T)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

func (o *blockingOracle) Bound(gamma float64) float64 { return 1 }
func (o *blockingOracle) N() int                      { return 4 }

type stubResult struct{ dpgraph.ReleaseInfo }

func (stubResult) Bound(float64) float64 { return 1 }
func (stubResult) Summary() string       { return "stub" }

// TestServeAdmissionControl fills a release's single admission slot
// with a parked request and checks the next one sheds with 429.
func TestServeAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	oracle := &blockingOracle{entered: make(chan struct{}, 1), release: make(chan struct{})}
	rel, err := s.reg.reserve("slow", dpgraph.ReleaseSpec{Mechanism: "release"}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rel.oracle, rel.result = oracle, stubResult{}
	close(rel.ready)

	done := make(chan error, 1)
	go func() {
		status, _ := get(t, ts.URL+"/v1/releases/slow/distance?s=0&t=1")
		if status != http.StatusOK {
			done <- fmt.Errorf("parked request finished with %d", status)
			return
		}
		done <- nil
	}()
	<-oracle.entered // the slot is now held inside the oracle

	status, data := get(t, ts.URL+"/v1/releases/slow/distance?s=0&t=1")
	if status != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429: %s", status, data)
	}
	var env errorEnvelope
	if json.Unmarshal(data, &env) != nil || !strings.Contains(env.Error, "admission cap") {
		t.Errorf("429 body = %s", data)
	}

	close(oracle.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Slot free again: the next request is admitted (and now returns
	// instantly because release stays closed).
	if status, data := get(t, ts.URL+"/v1/releases/slow/distance?s=0&t=1"); status != http.StatusOK {
		t.Errorf("post-drain request: status %d: %s", status, data)
	}
	_, data = get(t, ts.URL+"/metrics")
	var metrics struct {
		Releases map[string]metricsSnapshot `json:"releases"`
	}
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatal(err)
	}
	if got := metrics.Releases["slow"].Rejected429; got != 1 {
		t.Errorf("rejected_429 = %d, want 1", got)
	}
}

// TestServeConcurrentClients hammers one release from many goroutines
// while more releases materialize — the -race coverage for the serving
// path.
func TestServeConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createRelease(t, ts, `{"name":"main","mechanism":"release","seed":7,"index":"ch"}`)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients+2)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				s, u := (c+i)%16, (c*3+i*7)%16
				status, data := get(t, fmt.Sprintf("%s/v1/releases/main/distance?s=%d&t=%d", ts.URL, s, u))
				if status != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d: %s", c, status, data)
					return
				}
				if i%10 == 0 {
					if status, data := post(t, ts.URL+"/v1/releases/main/distances", "0 15\n1 2\n"); status != http.StatusOK {
						errs <- fmt.Errorf("client %d batch: status %d: %s", c, status, data)
						return
					}
				}
			}
		}(c)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"name":"side%d","mechanism":"apsd","seed":%d}`, c, c+1)
			status, data := post(t, ts.URL+"/v1/releases", body)
			if status != http.StatusCreated {
				errs <- fmt.Errorf("concurrent create %d: status %d: %s", c, status, data)
			}
		}(c)
	}
	// Poll /metrics and the listing throughout, racing the creates:
	// both must read materializing releases safely (regression for a
	// cacheStats read of rel.oracle before ready closed).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if status, data := get(t, ts.URL+"/metrics"); status != http.StatusOK {
				errs <- fmt.Errorf("metrics during load: status %d: %s", status, data)
				return
			}
			if status, data := get(t, ts.URL+"/v1/releases"); status != http.StatusOK {
				errs <- fmt.Errorf("listing during load: status %d: %s", status, data)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if status, _ := get(t, ts.URL+"/metrics"); status != http.StatusOK {
		t.Error("metrics unavailable after load")
	}
}
