package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/dpgraph"
)

// Snapshot transport: the daemon-side half of sealed release
// snapshots. GET /v1/releases/{name}/snapshot streams a release as a
// sealed artifact (signed when the server holds a signing key), and
// POST /v1/releases/{name}:import registers a release from an uploaded
// artifact — zero privacy budget spent, because everything in a
// snapshot is already-released public output. RestoreDir does the same
// from a directory at boot, which is what turns a daemon restart from
// a full re-materialization (budget + contraction) into a
// milliseconds-scale array load.

// DefaultMaxSnapshotBytes bounds uploaded snapshot artifacts when
// Config leaves MaxSnapshotBytes unset: a ~10M-edge indexed release
// seals to well under this, and the bound keeps a hostile upload from
// streaming unbounded bytes through the decoder.
const DefaultMaxSnapshotBytes = 1 << 30

// snapshotExt is the artifact filename extension RestoreDir scans for.
const snapshotExt = ".dpsnap"

// etagOf derives the snapshot ETag from the release's receipt: sealing
// is deterministic, so the receipt (mechanism, cost, timestamp)
// identifies the artifact bytes, and replicas can revalidate a cached
// snapshot without re-downloading.
func etagOf(result dpgraph.Result) (string, error) {
	receiptJSON, err := json.Marshal(result.Info().Receipt)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(receiptJSON)
	return `"` + hex.EncodeToString(sum[:]) + `"`, nil
}

// handleSnapshotGet streams the named release as a sealed artifact.
// The response is deterministic for a given release, carries the
// receipt-hash ETag, and honors If-None-Match revalidation.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	rel, ok := s.resolve(w, r)
	if !ok {
		return
	}
	if !dpgraph.Sealable(rel.oracle) {
		writeError(w, http.StatusConflict, "release %q (mechanism %s) is not sealable: only synthetic-graph releases have a snapshot form", rel.name, rel.spec.Mechanism)
		return
	}
	etag, err := etagOf(rel.result)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "computing snapshot etag: %v", err)
		return
	}
	w.Header().Set("ETag", etag)
	for _, match := range strings.Split(r.Header.Get("If-None-Match"), ",") {
		if m := strings.TrimSpace(match); m == etag || m == "*" {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	if !s.admitOrShed(w, rel) {
		return
	}
	defer rel.done()
	var opts []dpgraph.SealOption
	if s.cfg.SigningKey != nil {
		opts = append(opts, dpgraph.WithSigningKey(s.cfg.SigningKey))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", rel.name+snapshotExt))
	// Seal validates before emitting its first byte, so a failure with
	// nothing yet written can still become a clean JSON error; once the
	// stream has started, a failure means the client went away and
	// there is no response left to fix.
	lw := &latchWriter{w: w}
	if err := dpgraph.Seal(lw, rel.oracle, rel.result, opts...); err != nil && !lw.wrote {
		w.Header().Del("Content-Disposition")
		writeError(w, http.StatusInternalServerError, "sealing %q: %v", rel.name, err)
	}
}

// latchWriter records whether any byte reached the response, so the
// snapshot handler knows if an error can still be reported cleanly.
type latchWriter struct {
	w     http.ResponseWriter
	wrote bool
}

func (l *latchWriter) Write(p []byte) (int, error) {
	if len(p) > 0 {
		l.wrote = true
	}
	return l.w.Write(p)
}

// handleImport registers a release from an uploaded sealed artifact
// under the path's name (spelled /v1/releases/{name}:import; the mux
// wildcard captures "name:import" because a colon cannot appear in a
// release name). Importing spends no privacy budget — the receipt
// rides along from the origin release — but counts against the
// registry cap like any other release.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	name, ok := strings.CutSuffix(r.PathValue("name"), ":import")
	if !ok {
		writeError(w, http.StatusNotFound, "no such endpoint %s (snapshot import is POST /v1/releases/{name}:import)", r.URL.Path)
		return
	}
	if !releaseName.MatchString(name) {
		writeError(w, http.StatusBadRequest, "bad release name %q: want 1-128 characters of [A-Za-z0-9._-]", name)
		return
	}
	maxBytes := s.cfg.MaxSnapshotBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxSnapshotBytes
	}
	var opts []dpgraph.UnsealOption
	if s.cfg.VerifyKey != nil {
		opts = append(opts, dpgraph.WithVerifyKey(s.cfg.VerifyKey))
	}
	// Unsealing is pure post-processing of an already-public artifact:
	// no budget at stake, so decoding before reserving the name risks
	// only wasted work on a conflict, never a double spend.
	sealed, err := dpgraph.Unseal(http.MaxBytesReader(w, r.Body, maxBytes), opts...)
	if err != nil {
		writeBodyError(w, fmt.Errorf("unsealing snapshot for %q: %w", name, err))
		return
	}
	rel, err := s.publishSealed(name, sealed)
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, errTooManyReleases) {
			status = http.StatusTooManyRequests
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.summarize(rel))
}

// publishSealed registers an unsealed release in the registry, ready
// immediately: there is no materialization phase to wait out.
func (s *Server) publishSealed(name string, sealed *dpgraph.Sealed) (*release, error) {
	info := sealed.Info()
	spec := dpgraph.ReleaseSpec{
		Mechanism: info.Mechanism,
		Epsilon:   info.Epsilon,
		Delta:     info.Delta,
		Index:     sealed.IndexKind(),
	}
	rel, err := s.reg.reserve(name, spec, s.cfg.MaxInflight, s.cfg.MaxReleases)
	if err != nil {
		return nil, err
	}
	s.publish(rel, sealed.Oracle(), sealed, nil)
	return rel, nil
}

// RestoreDir registers every *.dpsnap artifact in dir as a ready
// release named by its file basename, verifying signatures when the
// server holds a verify key. It is the serve -snapshot-dir boot path:
// restoring spends zero privacy budget and skips index construction,
// so a replica starts answering in milliseconds. The first bad
// artifact fails the whole restore — a daemon silently serving a
// subset of its configured releases is worse than one that refuses to
// start.
func (s *Server) RestoreDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("reading snapshot dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), snapshotExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var opts []dpgraph.UnsealOption
	if s.cfg.VerifyKey != nil {
		opts = append(opts, dpgraph.WithVerifyKey(s.cfg.VerifyKey))
	}
	restored := 0
	for _, fname := range names {
		name := strings.TrimSuffix(fname, snapshotExt)
		if !releaseName.MatchString(name) {
			return restored, fmt.Errorf("snapshot %s: name %q is not a valid release name", fname, name)
		}
		f, err := os.Open(filepath.Join(dir, fname))
		if err != nil {
			return restored, fmt.Errorf("snapshot %s: %w", fname, err)
		}
		sealed, err := dpgraph.Unseal(f, opts...)
		f.Close()
		if err != nil {
			return restored, fmt.Errorf("snapshot %s: %w", fname, err)
		}
		if _, err := s.publishSealed(name, sealed); err != nil {
			return restored, fmt.Errorf("snapshot %s: %w", fname, err)
		}
		restored++
	}
	return restored, nil
}
