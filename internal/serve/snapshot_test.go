package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/dpgraph"
	"repro/internal/snapshot"
)

// fetchSnapshot downloads a release's sealed artifact, returning the
// status, body, and ETag.
func fetchSnapshot(t *testing.T, url string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data, resp.Header.Get("ETag")
}

// importSnapshot uploads artifact bytes to the :import endpoint.
func importSnapshot(t *testing.T, baseURL, name string, data []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/releases/"+name+":import", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// distanceOf runs one point query and returns the answer bits.
func distanceOf(t *testing.T, baseURL, name string, s, u int) PairAnswer {
	t.Helper()
	status, data := get(t, baseURL+"/v1/releases/"+name+"/distance?s="+itoa(s)+"&t="+itoa(u))
	if status != http.StatusOK {
		t.Fatalf("distance on %q: status %d: %s", name, status, data)
	}
	var ans PairAnswer
	if err := json.Unmarshal(data, &ans); err != nil {
		t.Fatalf("bad distance response: %v\n%s", err, data)
	}
	return ans
}

func itoa(v int) string {
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}

// TestServeSnapshotRoundTrip is the daemon-side round trip: download a
// release's snapshot, import it under a new name, and require
// bit-identical answers with the origin receipt carried over — the
// import must spend zero fresh budget.
func TestServeSnapshotRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	origin := createRelease(t, ts, `{"name":"origin","mechanism":"release","seed":7,"index":"ch"}`)

	status, data, etag := fetchSnapshot(t, ts.URL+"/v1/releases/origin/snapshot")
	if status != http.StatusOK {
		t.Fatalf("snapshot download: status %d: %s", status, data)
	}
	if etag == "" {
		t.Fatal("snapshot response carries no ETag")
	}

	// Re-download with If-None-Match: revalidation must 304.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/releases/origin/snapshot", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match revalidation: status %d, want 304", resp.StatusCode)
	}

	// Downloads are deterministic: same bytes, same ETag.
	status2, data2, etag2 := fetchSnapshot(t, ts.URL+"/v1/releases/origin/snapshot")
	if status2 != http.StatusOK || !bytes.Equal(data, data2) || etag2 != etag {
		t.Fatalf("second download differs: status %d, equal=%v, etag %s vs %s", status2, bytes.Equal(data, data2), etag2, etag)
	}

	status, body := importSnapshot(t, ts.URL, "replica", data)
	if status != http.StatusCreated {
		t.Fatalf("import: status %d: %s", status, body)
	}
	var imported releaseSummary
	if err := json.Unmarshal(body, &imported); err != nil {
		t.Fatalf("bad import response: %v\n%s", err, body)
	}
	if imported.Status != "ready" {
		t.Fatalf("imported release status %q, want ready", imported.Status)
	}
	if imported.Index != "ch" {
		t.Fatalf("imported release index %q, want ch", imported.Index)
	}
	// The receipt rides along: same mechanism, cost, and timestamp.
	if imported.Receipt.Mechanism != origin.Receipt.Mechanism ||
		imported.Receipt.Epsilon != origin.Receipt.Epsilon ||
		!imported.Receipt.Time.Equal(origin.Receipt.Time) {
		t.Fatalf("imported receipt %v, origin %v", imported.Receipt, origin.Receipt)
	}

	// Answers are bit-identical across the origin and the replica.
	for s := 0; s < 16; s++ {
		a := distanceOf(t, ts.URL, "origin", 0, s)
		b := distanceOf(t, ts.URL, "replica", 0, s)
		if math.Float64bits(a.Value) != math.Float64bits(b.Value) {
			t.Fatalf("pair (0,%d): origin %v, replica %v", s, a.Value, b.Value)
		}
	}

	// The replica's own snapshot is byte-identical to the origin's
	// (deterministic sealing), so its ETag matches too.
	status3, data3, etag3 := fetchSnapshot(t, ts.URL+"/v1/releases/replica/snapshot")
	if status3 != http.StatusOK || !bytes.Equal(data, data3) {
		t.Fatalf("replica snapshot differs from origin artifact (status %d)", status3)
	}
	if etag3 != etag {
		t.Fatalf("replica ETag %s, origin %s", etag3, etag)
	}
}

// TestServeSnapshotImportRejectsTamper flips bytes in a valid artifact
// and requires the import to fail without registering anything.
func TestServeSnapshotImportRejectsTamper(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createRelease(t, ts, `{"name":"origin","mechanism":"release","seed":3}`)
	status, data, _ := fetchSnapshot(t, ts.URL+"/v1/releases/origin/snapshot")
	if status != http.StatusOK {
		t.Fatalf("snapshot download: status %d", status)
	}
	for _, pos := range []int{9, 60, 200, len(data) - 10} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x20
		status, body := importSnapshot(t, ts.URL, "bad", mut)
		if status != http.StatusBadRequest {
			t.Fatalf("tampered import at byte %d: status %d: %s", pos, status, body)
		}
	}
	if status, _ := get(t, ts.URL+"/v1/releases/bad/distance?s=0&t=1"); status != http.StatusNotFound {
		t.Fatalf("tampered import left a release behind (status %d)", status)
	}
	// Truncation too.
	status, body := importSnapshot(t, ts.URL, "bad", data[:len(data)/2])
	if status != http.StatusBadRequest {
		t.Fatalf("truncated import: status %d: %s", status, body)
	}
}

// TestServeSnapshotSigning: a server holding a signing key exports
// verifiable artifacts; a server holding a verify key refuses
// unsigned or wrongly-signed imports.
func TestServeSnapshotSigning(t *testing.T) {
	pub, priv, err := snapshot.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	_, signingTS := newTestServer(t, Config{SigningKey: priv})
	createRelease(t, signingTS, `{"name":"origin","mechanism":"release","seed":5}`)
	status, signed, _ := fetchSnapshot(t, signingTS.URL+"/v1/releases/origin/snapshot")
	if status != http.StatusOK {
		t.Fatalf("signed download: status %d", status)
	}
	if sealed, err := dpgraph.Unseal(bytes.NewReader(signed), dpgraph.WithVerifyKey(pub)); err != nil || !sealed.Verified() {
		t.Fatalf("exported artifact does not verify: %v", err)
	}

	_, verifyingTS := newTestServer(t, Config{VerifyKey: pub})
	if status, body := importSnapshot(t, verifyingTS.URL, "replica", signed); status != http.StatusCreated {
		t.Fatalf("verified import: status %d: %s", status, body)
	}

	// Unsigned artifact refused by the verifying server.
	_, plainTS := newTestServer(t, Config{})
	createRelease(t, plainTS, `{"name":"origin","mechanism":"release","seed":5}`)
	status, unsigned, _ := fetchSnapshot(t, plainTS.URL+"/v1/releases/origin/snapshot")
	if status != http.StatusOK {
		t.Fatal("unsigned download failed")
	}
	if status, body := importSnapshot(t, verifyingTS.URL, "intruder", unsigned); status != http.StatusBadRequest {
		t.Fatalf("unsigned import on verifying server: status %d: %s", status, body)
	}
}

// TestServeSnapshotNotSealable: lookup-backed releases answer 409, not
// a broken artifact.
func TestServeSnapshotNotSealable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createRelease(t, ts, `{"name":"table","mechanism":"apsd","seed":2}`)
	status, body, _ := fetchSnapshot(t, ts.URL+"/v1/releases/table/snapshot")
	if status != http.StatusConflict {
		t.Fatalf("snapshot of a table release: status %d: %s", status, body)
	}
}

// TestServeSnapshotImportValidation covers the import endpoint's
// request-shape errors: bad verb suffix, bad name, name conflicts.
func TestServeSnapshotImportValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createRelease(t, ts, `{"name":"origin","mechanism":"release","seed":1}`)
	_, data, _ := fetchSnapshot(t, ts.URL+"/v1/releases/origin/snapshot")

	// POST to a release path without the :import verb is not a route.
	resp, err := http.Post(ts.URL+"/v1/releases/origin", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST without :import: status %d, want 404", resp.StatusCode)
	}
	// Conflict with an existing name.
	if status, body := importSnapshot(t, ts.URL, "origin", data); status != http.StatusConflict {
		t.Fatalf("import over an existing name: status %d: %s", status, body)
	}
	// Invalid name.
	if status, _ := importSnapshot(t, ts.URL, "bad..name!", data); status != http.StatusBadRequest {
		t.Fatalf("import under an invalid name: status %d", status)
	}
}

// TestServeRestoreDir: artifacts dropped in a directory restore at
// boot into ready releases with the origin receipts, no budget spent.
func TestServeRestoreDir(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createRelease(t, ts, `{"name":"a","mechanism":"release","seed":11,"index":"ch"}`)
	createRelease(t, ts, `{"name":"b","mechanism":"release","seed":12,"index":"alt"}`)
	dir := t.TempDir()
	for _, name := range []string{"a", "b"} {
		_, data, _ := fetchSnapshot(t, ts.URL+"/v1/releases/"+name+"/snapshot")
		if err := os.WriteFile(filepath.Join(dir, name+".dpsnap"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// An unrelated file is ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, freshTS := newTestServer(t, Config{})
	n, err := fresh.RestoreDir(dir)
	if err != nil {
		t.Fatalf("RestoreDir: %v", err)
	}
	if n != 2 {
		t.Fatalf("restored %d snapshots, want 2", n)
	}
	for _, name := range []string{"a", "b"} {
		want := distanceOf(t, ts.URL, name, 0, 15)
		got := distanceOf(t, freshTS.URL, name, 0, 15)
		if math.Float64bits(want.Value) != math.Float64bits(got.Value) {
			t.Fatalf("restored %q answers differently: %v vs %v", name, got.Value, want.Value)
		}
	}

	// A corrupt artifact fails the whole restore.
	if err := os.WriteFile(filepath.Join(dir, "c.dpsnap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	another, _ := newTestServer(t, Config{})
	if _, err := another.RestoreDir(dir); err == nil {
		t.Fatal("RestoreDir accepted a corrupt artifact")
	}
}
