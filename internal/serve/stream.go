package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"time"

	"repro/dpgraph"
)

// streamBatchMax bounds how many pending stream queries are answered in
// one oracle batch: large enough that a PHAST sweep amortizes, small
// enough that the first answers of a long stream arrive promptly.
const streamBatchMax = 512

// streamLineMax bounds one NDJSON input line; a pair of ints never
// comes close, so anything longer is a protocol error, not data.
const streamLineMax = 64 << 10

// handleStream is the pipelined batch endpoint: the client streams text
// "s t" lines and receives one compact PairAnswer JSON line per query,
// in order, without per-query HTTP round trips. Queries are answered in
// mini-batches — everything buffered when the reader would block, up to
// streamBatchMax — so a pipelining client gets sweep-amortized batch
// throughput with single-stream latency. One admission slot covers the
// whole stream. A malformed line terminates the stream with one
// {"error":...} line after the answers already written.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rel, ok := s.resolve(w, r)
	if !ok {
		return
	}
	if !s.admitOrShed(w, rel) {
		return
	}
	defer rel.done()
	rel.metrics.requests.Add(1)
	// Without full duplex the HTTP/1 server silently drains the rest of
	// the request body at the first response flush, truncating a
	// pipelining client's stream to whatever arrived before the first
	// batch of answers. Errors (recorders, HTTP/2) are fine to ignore:
	// those writers never drain the body.
	http.NewResponseController(w).EnableFullDuplex() //nolint:errcheck
	h := w.Header()
	h["Content-Type"] = []string{"application/x-ndjson"}
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)

	ws := getWorkspace()
	defer putWorkspace(ws)
	br := bufio.NewReaderSize(r.Body, 64<<10)
	pairs := ws.pairs[:0]
	vals := ws.vals
	buf := ws.buf

	fail := func(err error) {
		rel.metrics.errors.Add(1)
		buf = appendErrorLine(buf[:0], err)
		w.Write(buf) //nolint:errcheck // the stream is already committed
		if fl != nil {
			fl.Flush()
		}
	}
	flush := func() bool {
		if len(pairs) == 0 {
			return true
		}
		start := time.Now()
		if cap(vals) < len(pairs) {
			vals = make([]float64, len(pairs))
		}
		out := vals[:len(pairs)]
		if err := rel.batchInto(pairs, out); err != nil {
			fail(err)
			return false
		}
		buf = buf[:0]
		for i, p := range pairs {
			buf = appendPairAnswer(buf, p.S, p.T, out[i])
			buf = append(buf, '\n')
		}
		if _, err := w.Write(buf); err != nil {
			return false // client went away; no one is listening for an error
		}
		rel.metrics.observe(len(pairs), time.Since(start))
		pairs = pairs[:0]
		return true
	}

	lineNo := 0
	for {
		line, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			flush()
			fail(fmt.Errorf("stream line %d exceeds %d bytes", lineNo+1, streamLineMax))
			break
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 && trimmed[0] != '#' {
			lineNo++
			p, ok := parseStreamLine(trimmed)
			if !ok || !rel.inRange(p.S, p.T) {
				flush()
				fail(fmt.Errorf("stream line %d: want \"s t\" with vertices in [0, %d), got %q", lineNo, rel.oracle.N(), trimmed))
				break
			}
			pairs = append(pairs, p)
		}
		// Answer when the pipeline runs dry or the batch is full: a
		// client with more lines already in flight keeps filling the
		// batch, a waiting client gets its answers now.
		if len(pairs) >= streamBatchMax || br.Buffered() == 0 || err != nil {
			drained := br.Buffered() == 0
			if !flush() {
				break
			}
			if fl != nil && (drained || err != nil) {
				fl.Flush()
			}
		}
		if err != nil {
			break // io.EOF ends the stream; anything else lost the client
		}
	}
	ws.pairs, ws.vals, ws.buf = pairs[:0], vals, buf
}

// parseStreamLine decodes one trimmed "s t" stream line.
func parseStreamLine(line []byte) (dpgraph.VertexPair, bool) {
	k := 0
	for k < len(line) && !isTextSpace(line[k]) {
		k++
	}
	f0 := line[:k]
	for k < len(line) && isTextSpace(line[k]) {
		k++
	}
	rest := line[k:]
	for _, c := range rest {
		if isTextSpace(c) {
			return dpgraph.VertexPair{}, false
		}
	}
	s, ok1 := parseATOI(f0)
	t, ok2 := parseATOI(rest)
	if !ok1 || !ok2 {
		return dpgraph.VertexPair{}, false
	}
	return dpgraph.VertexPair{S: s, T: t}, true
}
