package snapshot

import (
	"runtime/debug"
	"strings"
)

// WriterVersion identifies the running build for the snapshot header:
// module path and version, plus the VCS revision (and a +dirty marker)
// when the binary was built from a checkout. Purely forensic — readers
// record it but never branch on it.
func WriterVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var b strings.Builder
	b.WriteString(bi.Main.Path)
	if bi.Main.Version != "" {
		b.WriteString("@")
		b.WriteString(bi.Main.Version)
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	// Module pseudo-versions already encode the revision (and go >= 1.22
	// appends +dirty itself); only add what the version string lacks.
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if !strings.Contains(bi.Main.Version, rev) {
			b.WriteString("+")
			b.WriteString(rev)
		}
		if dirty != "" && !strings.Contains(bi.Main.Version, "dirty") {
			b.WriteString(dirty)
		}
	}
	return b.String()
}
