// Package snapshot implements the sealed release container: a
// versioned binary artifact that carries one materialized release —
// flat little-endian CSR arrays, the released weight vector, the
// query-index arrays (CH upward graph, hub-label arena, or ALT
// landmark rows), and the
// JSON privacy receipt — between processes and machines. The container
// is what makes a release shippable: materializing spends privacy
// budget and runs contraction once, and every replica that unseals the
// artifact gets a bit-identical oracle for free.
//
// Layout (all integers little-endian):
//
//	offset 0   magic            8 bytes  "DPGSNAP\x01"
//	offset 8   header          48 bytes  version, section count,
//	                                     manifest/signature locators
//	offset 56  section table   56 bytes per section: kind, offset,
//	                                     length, SHA-256 digest
//	...        sections        each starting on a 64-byte boundary,
//	                           zero-padded between, so a future reader
//	                           can mmap the numeric arrays in place
//	...        manifest        JSON restating every table entry
//	...        signature       ed25519 over the manifest bytes (0 or
//	                           64 bytes)
//
// The manifest is the root of trust: it embeds each section's digest,
// so the detached signature over the manifest bytes authenticates the
// entire artifact, and the reader rejects any divergence between the
// (unsigned) section table and the (signed) manifest. ed25519 signing
// is deterministic, so sealing the same release twice yields
// byte-identical artifacts — which is what lets the serving layer use
// a content hash as a stable ETag.
//
// A snapshot is untrusted network input. Read never returns a partial
// artifact: every structural violation — bad magic, unknown version,
// misplaced sections, digest mismatch, missing or invalid signature,
// metadata that disagrees with the embedded arrays, trailing garbage —
// fails with an error wrapping ErrInvalid before the caller sees any
// data.
package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Container constants. The magic doubles as a format fingerprint: the
// trailing byte is the major generation, bumped only when the layout
// changes incompatibly enough that even the header cannot be parsed.
const (
	magic = "DPGSNAP\x01"

	// FormatVersion is the container version this package writes by
	// default. Version 2 added the hub-label sections; the reader still
	// accepts every version down to MinFormatVersion, so version-1
	// artifacts (CH/ALT/no index) keep unsealing unchanged.
	FormatVersion = 2

	// MinFormatVersion is the oldest container version Read accepts.
	MinFormatVersion = 1

	headerSize     = 48
	tableEntrySize = 56
	sectionAlign   = 64

	// maxSections bounds the section table before any allocation
	// happens on behalf of the (untrusted) header.
	maxSections = 16

	// maxMetaLen and maxManifestLen bound the two JSON blobs; both are
	// small in practice (hundreds of bytes) and a length beyond this is
	// an attack, not a release.
	maxMetaLen     = 1 << 20
	maxManifestLen = 1 << 20
)

// Section kinds, in their mandatory file order. Kinds are strictly
// increasing within an artifact, and the meta section always comes
// first so the reader knows the expected shape of every later section
// before reaching it.
const (
	sectionMeta         = 1 // JSON Meta document
	sectionEdgeFrom     = 2 // uint32 per edge: source vertex
	sectionEdgeTo       = 3 // uint32 per edge: target vertex
	sectionWeights      = 4 // float64 per edge: released (clamped) weight
	sectionCHUpOff      = 5 // int32 x (N+1): CH upward CSR offsets
	sectionCHUpTo       = 6 // int32 per upward edge: CH target
	sectionCHUpWt       = 7 // float64 per upward edge: CH weight
	sectionALTLandmarks = 8 // float64 x (landmarks*N): ALT distance rows

	// Hub-label sections (format version 2+). An "hl" artifact carries
	// the CH sections too — the hierarchy backs the one-to-many sweep
	// and is what the labels were generated from.
	sectionHLLabOff  = 9  // int64 x (N+1): label arena offsets
	sectionHLLabHub  = 10 // int32 per label entry: hub vertex
	sectionHLLabDist = 11 // float64 per label entry: hub distance
)

// sectionName maps a kind to its manifest name; unknown kinds have no
// name and are rejected by the reader.
func sectionName(kind uint32) string {
	switch kind {
	case sectionMeta:
		return "meta"
	case sectionEdgeFrom:
		return "edge_from"
	case sectionEdgeTo:
		return "edge_to"
	case sectionWeights:
		return "weights"
	case sectionCHUpOff:
		return "ch_up_off"
	case sectionCHUpTo:
		return "ch_up_to"
	case sectionCHUpWt:
		return "ch_up_wt"
	case sectionALTLandmarks:
		return "alt_landmarks"
	case sectionHLLabOff:
		return "hl_lab_off"
	case sectionHLLabHub:
		return "hl_lab_hub"
	case sectionHLLabDist:
		return "hl_lab_dist"
	}
	return ""
}

// Sentinel errors. Every reader failure wraps ErrInvalid; the more
// specific sentinels additionally identify the three failure classes
// callers branch on (report differently, retry with another key, or
// refuse an upgrade path).
var (
	// ErrInvalid is the base class of every malformed-artifact error.
	ErrInvalid = errors.New("snapshot: invalid artifact")

	// ErrUnknownVersion marks an artifact written by an incompatible
	// (usually newer) format version.
	ErrUnknownVersion = errors.New("unknown format version")

	// ErrDigestMismatch marks a section whose bytes do not hash to the
	// digest the table and manifest claim.
	ErrDigestMismatch = errors.New("section digest mismatch")

	// ErrBadSignature marks a missing or unverifiable manifest
	// signature when verification was requested.
	ErrBadSignature = errors.New("bad signature")
)

// invalidf builds an ErrInvalid-wrapping error.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Meta is the JSON document stored as the artifact's first section: the
// release's privacy metadata and the shape of every array section. The
// reader cross-checks each field against the arrays themselves, so a
// receipt cannot claim a different release than the one embedded.
//
// Deliberately absent: the mechanism seed and any private input. A
// snapshot carries only the released (public) artifact.
type Meta struct {
	// FormatVersion restates the container version inside the signed
	// payload chain.
	FormatVersion int `json:"format_version"`
	// Writer identifies the producing build (module version + VCS
	// revision) for forensics.
	Writer string `json:"writer,omitempty"`

	// Mechanism, Epsilon, Delta, and NoiseScale restate the release's
	// privacy parameters; they must agree with the embedded Receipt.
	Mechanism  string  `json:"mechanism"`
	Epsilon    float64 `json:"epsilon"`
	Delta      float64 `json:"delta,omitempty"`
	NoiseScale float64 `json:"noise_scale"`

	// N and M are the topology's vertex and edge counts; the edge and
	// weight sections must have exactly M entries with endpoints in
	// [0, N).
	N int `json:"n"`
	M int `json:"m"`
	// Directed records the topology's orientation (index sections
	// require undirected).
	Directed bool `json:"directed,omitempty"`

	// Index is the embedded query index kind: "" (none), "ch", "alt",
	// or "hl" (format version 2+). It dictates which index sections
	// must be present.
	Index string `json:"index,omitempty"`
	// Landmarks is the ALT row count (0 unless Index == "alt").
	Landmarks int `json:"landmarks,omitempty"`

	// Receipt is the release's ledger entry, verbatim. It is carried —
	// not re-charged — so a restored replica serves under the original
	// budget accounting.
	Receipt json.RawMessage `json:"receipt"`
}

// Artifact is the decoded in-memory form of a sealed release: the Meta
// document plus the flat arrays of every section. Write serializes it;
// Read reconstructs it only after the whole container verifies.
type Artifact struct {
	Meta Meta

	// EdgeFrom/EdgeTo/Weights are the released graph: edge i joins
	// EdgeFrom[i]-EdgeTo[i] with released weight Weights[i].
	EdgeFrom []uint32
	EdgeTo   []uint32
	Weights  []float64

	// CHUpOff/CHUpTo/CHUpWt are the contraction-hierarchy upward CSR
	// (present iff Meta.Index == "ch").
	CHUpOff []int32
	CHUpTo  []int32
	CHUpWt  []float64

	// ALTLandmarks holds Meta.Landmarks rows of N landmark distances
	// (present iff Meta.Index == "alt").
	ALTLandmarks []float64

	// HLLabOff/HLLabHub/HLLabDist are the hub-label arena (present iff
	// Meta.Index == "hl", alongside the CH arrays): vertex v's label is
	// HLLabHub/HLLabDist[HLLabOff[v]:HLLabOff[v+1]], hubs ascending.
	HLLabOff  []int64
	HLLabHub  []int32
	HLLabDist []float64
}

// SectionInfo describes one section as recorded in the container.
type SectionInfo struct {
	Kind   uint32 `json:"kind"`
	Name   string `json:"name"`
	Offset uint64 `json:"offset"`
	Length uint64 `json:"length"`
	SHA256 string `json:"sha256"`
}

// Info reports what Read found around the payload: the container
// version, the writer's build string, the section layout, and whether
// the artifact carried — and passed — a signature.
type Info struct {
	FormatVersion uint32
	Writer        string
	Sections      []SectionInfo
	// Signed reports whether the artifact carries a signature at all;
	// Verified reports whether Read checked it against a caller-
	// provided key (Read fails rather than setting Verified false when
	// a requested verification does not pass).
	Signed   bool
	Verified bool
}

// manifest is the signed JSON document near the end of the container.
// It restates the format version, the writer, and every section-table
// entry (including digests), so a signature over its bytes
// authenticates the full artifact.
type manifest struct {
	FormatVersion uint32        `json:"format_version"`
	Writer        string        `json:"writer,omitempty"`
	Sections      []SectionInfo `json:"sections"`
}

// align64 rounds an offset up to the next 64-byte boundary.
func align64(off uint64) uint64 {
	return (off + sectionAlign - 1) &^ uint64(sectionAlign-1)
}
