package snapshot

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"os"
)

// Key handling for snapshot signing. Keys travel as PEM in the
// standard x509 envelopes (PKCS#8 for private, PKIX for public), so
// they interoperate with openssl-generated ed25519 keys:
//
//	openssl genpkey -algorithm ed25519 -out seal.key
//	openssl pkey -in seal.key -pubout -out seal.pub

// GenerateKey creates a fresh ed25519 signing key pair.
func GenerateKey() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(rand.Reader)
}

// MarshalPrivateKeyPEM renders a private key as a PKCS#8 PEM block.
func MarshalPrivateKeyPEM(key ed25519.PrivateKey) ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding private key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: der}), nil
}

// MarshalPublicKeyPEM renders a public key as a PKIX PEM block.
func MarshalPublicKeyPEM(key ed25519.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(key)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding public key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der}), nil
}

// ParsePrivateKeyPEM parses a PKCS#8 PEM block holding an ed25519
// private key.
func ParsePrivateKeyPEM(data []byte) (ed25519.PrivateKey, error) {
	block, _ := pem.Decode(data)
	if block == nil {
		return nil, fmt.Errorf("snapshot: no PEM block in key data")
	}
	if block.Type != "PRIVATE KEY" {
		return nil, fmt.Errorf("snapshot: PEM block is %q, want PRIVATE KEY", block.Type)
	}
	key, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("snapshot: parsing private key: %w", err)
	}
	ed, ok := key.(ed25519.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("snapshot: private key is %T, want ed25519", key)
	}
	return ed, nil
}

// ParsePublicKeyPEM parses a PKIX PEM block holding an ed25519 public
// key.
func ParsePublicKeyPEM(data []byte) (ed25519.PublicKey, error) {
	block, _ := pem.Decode(data)
	if block == nil {
		return nil, fmt.Errorf("snapshot: no PEM block in key data")
	}
	if block.Type != "PUBLIC KEY" {
		return nil, fmt.Errorf("snapshot: PEM block is %q, want PUBLIC KEY", block.Type)
	}
	key, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("snapshot: parsing public key: %w", err)
	}
	ed, ok := key.(ed25519.PublicKey)
	if !ok {
		return nil, fmt.Errorf("snapshot: public key is %T, want ed25519", key)
	}
	return ed, nil
}

// LoadPrivateKey reads and parses a PEM private key file.
func LoadPrivateKey(path string) (ed25519.PrivateKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading signing key: %w", err)
	}
	return ParsePrivateKeyPEM(data)
}

// LoadPublicKey reads and parses a PEM public key file.
func LoadPublicKey(path string) (ed25519.PublicKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading verify key: %w", err)
	}
	return ParsePublicKeyPEM(data)
}
