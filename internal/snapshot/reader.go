package snapshot

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// ReadOptions configures Read.
type ReadOptions struct {
	// VerifyKey, when non-nil, requires the artifact to carry an
	// ed25519 signature that verifies against it; an unsigned artifact
	// or a signature by any other key fails with ErrBadSignature. When
	// nil, a present signature is reported in Info but not checked.
	VerifyKey ed25519.PublicKey
}

// Read parses and verifies a sealed artifact from r. The stream is
// consumed strictly sequentially (no seeking) through a fixed-size
// scratch buffer, and every array allocation grows as bytes actually
// arrive — a header lying about lengths cannot force a large
// allocation before the stream runs dry.
//
// Read is all-or-nothing: it returns the artifact only after the full
// container parses, every section digest matches, the signed manifest
// agrees with the section table, the signature verifies (when a key is
// given), the metadata is consistent with the arrays, and the stream
// ends exactly at the signature. Any violation returns a nil artifact
// and an error wrapping ErrInvalid.
func Read(r io.Reader, opts ReadOptions) (*Artifact, *Info, error) {
	cr := &countingReader{r: r}

	var mg [len(magic)]byte
	if err := readFull(cr, mg[:], "magic"); err != nil {
		return nil, nil, err
	}
	if string(mg[:]) != magic {
		return nil, nil, invalidf("bad magic %q", mg[:])
	}
	var hdr [headerSize]byte
	if err := readFull(cr, hdr[:], "header"); err != nil {
		return nil, nil, err
	}
	version := binary.LittleEndian.Uint32(hdr[0:])
	if version < MinFormatVersion || version > FormatVersion {
		return nil, nil, fmt.Errorf("%w: %w %d (this reader handles %d..%d)", ErrInvalid, ErrUnknownVersion, version, MinFormatVersion, FormatVersion)
	}
	sectionCount := binary.LittleEndian.Uint32(hdr[4:])
	manifestOff := binary.LittleEndian.Uint64(hdr[8:])
	manifestLen := binary.LittleEndian.Uint64(hdr[16:])
	sigOff := binary.LittleEndian.Uint64(hdr[24:])
	sigLen := binary.LittleEndian.Uint64(hdr[32:])
	if !bytes.Equal(hdr[40:], make([]byte, 8)) {
		return nil, nil, invalidf("nonzero reserved header bytes")
	}
	if sectionCount < 1 || sectionCount > maxSections {
		return nil, nil, invalidf("section count %d outside [1, %d]", sectionCount, maxSections)
	}
	if manifestLen == 0 || manifestLen > maxManifestLen {
		return nil, nil, invalidf("manifest length %d outside [1, %d]", manifestLen, maxManifestLen)
	}
	if sigLen != 0 && sigLen != ed25519.SignatureSize {
		return nil, nil, invalidf("signature length %d, want 0 or %d", sigLen, ed25519.SignatureSize)
	}
	if sigOff != manifestOff+manifestLen {
		return nil, nil, invalidf("signature at offset %d, want %d (directly after the manifest)", sigOff, manifestOff+manifestLen)
	}

	// Section table. The layout admits exactly one valid offset for
	// every section — the aligned position after its predecessor — so
	// the table's offsets are verified, not trusted: no gaps where
	// unaccounted bytes could hide.
	table := make([]SectionInfo, sectionCount)
	digests := make([][sha256.Size]byte, sectionCount)
	off := uint64(len(magic)) + headerSize + tableEntrySize*uint64(sectionCount)
	var ent [tableEntrySize]byte
	for i := range table {
		if err := readFull(cr, ent[:], "section table"); err != nil {
			return nil, nil, err
		}
		kind := binary.LittleEndian.Uint32(ent[0:])
		if sectionName(kind) == "" {
			return nil, nil, invalidf("section %d has unknown kind %d", i, kind)
		}
		if binary.LittleEndian.Uint32(ent[4:]) != 0 {
			return nil, nil, invalidf("section %d has nonzero reserved field", i)
		}
		if i == 0 && kind != sectionMeta {
			return nil, nil, invalidf("first section has kind %d, want meta", kind)
		}
		if i > 0 && kind <= table[i-1].Kind {
			return nil, nil, invalidf("section kinds not strictly increasing at entry %d", i)
		}
		secOff := binary.LittleEndian.Uint64(ent[8:])
		secLen := binary.LittleEndian.Uint64(ent[16:])
		if secLen > math.MaxInt64-off || off > math.MaxInt64 {
			return nil, nil, invalidf("section %d length %d overflows the layout", i, secLen)
		}
		off = align64(off)
		if secOff != off {
			return nil, nil, invalidf("section %d at offset %d, layout requires %d", i, secOff, off)
		}
		copy(digests[i][:], ent[24:])
		table[i] = SectionInfo{
			Kind:   kind,
			Name:   sectionName(kind),
			Offset: secOff,
			Length: secLen,
			SHA256: hex.EncodeToString(ent[24 : 24+sha256.Size]),
		}
		off = secOff + secLen
	}
	if manifestOff != align64(off) {
		return nil, nil, invalidf("manifest at offset %d, layout requires %d", manifestOff, align64(off))
	}

	// Sections, in table order. The meta section decodes first, fixing
	// the exact byte length of every later section; a section that
	// disagrees is rejected before its payload is interpreted.
	art := &Artifact{}
	for i, sec := range table {
		if err := cr.skipPadding(sec.Offset); err != nil {
			return nil, nil, err
		}
		h := sha256.New()
		body := io.TeeReader(io.LimitReader(cr, int64(sec.Length)), h)
		if sec.Kind == sectionMeta {
			if sec.Length > maxMetaLen {
				return nil, nil, invalidf("meta section is %d bytes, exceeding the %d-byte cap", sec.Length, maxMetaLen)
			}
			metaJSON := make([]byte, sec.Length)
			if err := readFull(body, metaJSON, "meta section"); err != nil {
				return nil, nil, err
			}
			dec := json.NewDecoder(bytes.NewReader(metaJSON))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&art.Meta); err != nil {
				return nil, nil, invalidf("meta section: %v", err)
			}
			if err := checkMeta(&art.Meta, version); err != nil {
				return nil, nil, err
			}
		} else {
			want, ok := expectedLength(&art.Meta, sec.Kind, art)
			if !ok {
				return nil, nil, invalidf("%s section present but meta declares index %q", sec.Name, art.Meta.Index)
			}
			if sec.Length != want {
				return nil, nil, invalidf("%s section is %d bytes, meta requires %d", sec.Name, sec.Length, want)
			}
			if err := decodeSection(body, sec.Kind, sec.Length, art); err != nil {
				return nil, nil, err
			}
		}
		var sum [sha256.Size]byte
		h.Sum(sum[:0])
		if sum != digests[i] {
			return nil, nil, fmt.Errorf("%w: %w in %s section", ErrInvalid, ErrDigestMismatch, sec.Name)
		}
	}
	if err := checkSections(art, table); err != nil {
		return nil, nil, err
	}

	// Manifest: the signed restatement of the table. Byte-for-byte
	// agreement with what was already parsed means the signature below
	// covers everything that was read.
	if err := cr.skipPadding(manifestOff); err != nil {
		return nil, nil, err
	}
	manifestJSON := make([]byte, manifestLen)
	if err := readFull(cr, manifestJSON, "manifest"); err != nil {
		return nil, nil, err
	}
	var man manifest
	mdec := json.NewDecoder(bytes.NewReader(manifestJSON))
	mdec.DisallowUnknownFields()
	if err := mdec.Decode(&man); err != nil {
		return nil, nil, invalidf("manifest: %v", err)
	}
	if man.FormatVersion != version {
		return nil, nil, invalidf("manifest declares format version %d, header says %d", man.FormatVersion, version)
	}
	if len(man.Sections) != len(table) {
		return nil, nil, invalidf("manifest lists %d sections, table has %d", len(man.Sections), len(table))
	}
	for i, ms := range man.Sections {
		if ms != table[i] {
			return nil, nil, invalidf("manifest disagrees with section table on %s", table[i].Name)
		}
	}
	if man.Writer != art.Meta.Writer {
		return nil, nil, invalidf("manifest writer %q disagrees with meta writer %q", man.Writer, art.Meta.Writer)
	}

	// Signature, then hard end-of-stream: a valid artifact has nothing
	// after it, so trailing bytes are an attack or corruption.
	var sig []byte
	if sigLen > 0 {
		sig = make([]byte, sigLen)
		if err := readFull(cr, sig, "signature"); err != nil {
			return nil, nil, err
		}
	}
	var tail [1]byte
	if _, err := cr.Read(tail[:]); err != io.EOF {
		return nil, nil, invalidf("trailing bytes after the signature")
	}

	info := &Info{
		FormatVersion: version,
		Writer:        art.Meta.Writer,
		Sections:      table,
		Signed:        len(sig) > 0,
	}
	if opts.VerifyKey != nil {
		if len(opts.VerifyKey) != ed25519.PublicKeySize {
			return nil, nil, fmt.Errorf("snapshot: verify key has %d bytes, want %d", len(opts.VerifyKey), ed25519.PublicKeySize)
		}
		if len(sig) == 0 {
			return nil, nil, fmt.Errorf("%w: %w: artifact is unsigned but verification was requested", ErrInvalid, ErrBadSignature)
		}
		if !ed25519.Verify(opts.VerifyKey, manifestJSON, sig) {
			return nil, nil, fmt.Errorf("%w: %w: manifest signature does not verify", ErrInvalid, ErrBadSignature)
		}
		info.Verified = true
	}
	return art, info, nil
}

// checkMeta validates the meta document on its own: counts in range,
// a known index kind for the container version, a receipt present.
// Cross-checks against the arrays happen in checkSections once they
// are decoded.
func checkMeta(m *Meta, version uint32) error {
	if m.FormatVersion != int(version) {
		return invalidf("meta declares format version %d, header says %d", m.FormatVersion, version)
	}
	if m.N < 0 || uint64(m.N) > math.MaxUint32 {
		return invalidf("meta vertex count %d outside [0, 2^32)", m.N)
	}
	if m.M < 0 || uint64(m.M) > math.MaxUint32 {
		return invalidf("meta edge count %d outside [0, 2^32)", m.M)
	}
	switch m.Index {
	case "":
		if m.Landmarks != 0 {
			return invalidf("meta declares %d landmarks without an ALT index", m.Landmarks)
		}
	case "ch":
		if m.Directed {
			return invalidf("meta declares a CH index on a directed topology")
		}
		if m.Landmarks != 0 {
			return invalidf("meta declares %d landmarks alongside a CH index", m.Landmarks)
		}
	case "hl":
		if version < 2 {
			return invalidf("meta declares an HL index in a version-%d container (hub labels need version 2)", version)
		}
		if m.Directed {
			return invalidf("meta declares an HL index on a directed topology")
		}
		if m.Landmarks != 0 {
			return invalidf("meta declares %d landmarks alongside an HL index", m.Landmarks)
		}
	case "alt":
		if m.Directed {
			return invalidf("meta declares an ALT index on a directed topology")
		}
		if m.Landmarks < 1 || m.Landmarks > 1<<15 {
			return invalidf("meta landmark count %d outside [1, %d]", m.Landmarks, 1<<15)
		}
	default:
		return invalidf("meta declares unknown index kind %q", m.Index)
	}
	if m.NoiseScale < 0 || math.IsNaN(m.NoiseScale) || math.IsInf(m.NoiseScale, 0) {
		return invalidf("meta noise scale %g is not a finite nonnegative number", m.NoiseScale)
	}
	if m.Epsilon < 0 || math.IsNaN(m.Epsilon) || math.IsInf(m.Epsilon, 0) {
		return invalidf("meta epsilon %g is not a finite nonnegative number", m.Epsilon)
	}
	if len(m.Receipt) == 0 {
		return invalidf("meta carries no receipt")
	}
	return nil
}

// expectedLength returns the exact byte length meta requires of a
// non-meta section, or ok=false when the section should not exist
// under meta's declared index kind. CHUpTo's length is pinned by the
// already-decoded CHUpOff array (its final offset counts the upward
// edges), so even the variable-size sections have exactly one valid
// length.
func expectedLength(m *Meta, kind uint32, art *Artifact) (length uint64, ok bool) {
	switch kind {
	case sectionEdgeFrom, sectionEdgeTo:
		return 4 * uint64(m.M), true
	case sectionWeights:
		return 8 * uint64(m.M), true
	case sectionCHUpOff:
		return 4 * (uint64(m.N) + 1), m.Index == "ch" || m.Index == "hl"
	case sectionCHUpTo, sectionCHUpWt:
		if (m.Index != "ch" && m.Index != "hl") || len(art.CHUpOff) != m.N+1 {
			return 0, false
		}
		last := art.CHUpOff[m.N]
		if last < 0 {
			return 0, false
		}
		if kind == sectionCHUpTo {
			return 4 * uint64(last), true
		}
		return 8 * uint64(last), true
	case sectionALTLandmarks:
		return 8 * uint64(m.Landmarks) * uint64(m.N), m.Index == "alt"
	case sectionHLLabOff:
		return 8 * (uint64(m.N) + 1), m.Index == "hl"
	case sectionHLLabHub, sectionHLLabDist:
		if m.Index != "hl" || len(art.HLLabOff) != m.N+1 {
			return 0, false
		}
		last := art.HLLabOff[m.N]
		if last < 0 {
			return 0, false
		}
		if kind == sectionHLLabHub {
			return 4 * uint64(last), true
		}
		return 8 * uint64(last), true
	}
	return 0, false
}

// decodeSection decodes one numeric section's payload into the
// artifact's arrays.
func decodeSection(r io.Reader, kind uint32, length uint64, art *Artifact) error {
	var err error
	switch kind {
	case sectionEdgeFrom:
		art.EdgeFrom, err = decodeU32(r, length/4)
	case sectionEdgeTo:
		art.EdgeTo, err = decodeU32(r, length/4)
	case sectionWeights:
		art.Weights, err = decodeF64(r, length/8)
	case sectionCHUpOff:
		art.CHUpOff, err = decodeI32(r, length/4)
	case sectionCHUpTo:
		art.CHUpTo, err = decodeI32(r, length/4)
	case sectionCHUpWt:
		art.CHUpWt, err = decodeF64(r, length/8)
	case sectionALTLandmarks:
		art.ALTLandmarks, err = decodeF64(r, length/8)
	case sectionHLLabOff:
		art.HLLabOff, err = decodeI64(r, length/8)
	case sectionHLLabHub:
		art.HLLabHub, err = decodeI32(r, length/4)
	case sectionHLLabDist:
		art.HLLabDist, err = decodeF64(r, length/8)
	default:
		err = invalidf("undecodable section kind %d", kind)
	}
	if err != nil {
		return fmt.Errorf("%s section: %w", sectionName(kind), err)
	}
	return nil
}

// checkSections cross-validates the decoded arrays against meta: the
// full section set for the declared index kind must be present, and
// edge endpoints and weights must satisfy the invariants the sealed
// oracle relies on. Deeper index-array validation (offset
// monotonicity, target bounds) belongs to index rehydration, which
// re-checks everything it consumes.
func checkSections(art *Artifact, table []SectionInfo) error {
	have := make(map[uint32]bool, len(table))
	for _, s := range table {
		have[s.Kind] = true
	}
	required := []uint32{sectionMeta, sectionEdgeFrom, sectionEdgeTo, sectionWeights}
	switch art.Meta.Index {
	case "ch":
		required = append(required, sectionCHUpOff, sectionCHUpTo, sectionCHUpWt)
	case "hl":
		required = append(required, sectionCHUpOff, sectionCHUpTo, sectionCHUpWt,
			sectionHLLabOff, sectionHLLabHub, sectionHLLabDist)
	case "alt":
		required = append(required, sectionALTLandmarks)
	}
	if len(have) != len(required) {
		return invalidf("artifact has %d sections, index kind %q requires %d", len(have), art.Meta.Index, len(required))
	}
	for _, kind := range required {
		if !have[kind] {
			return invalidf("missing %s section", sectionName(kind))
		}
	}
	n := uint64(art.Meta.N)
	for i := range art.EdgeFrom {
		if uint64(art.EdgeFrom[i]) >= n || uint64(art.EdgeTo[i]) >= n {
			return invalidf("edge %d joins (%d, %d) outside [0, %d)", i, art.EdgeFrom[i], art.EdgeTo[i], n)
		}
	}
	for i, w := range art.Weights {
		if w < 0 || math.IsNaN(w) {
			return invalidf("released weight %d is %g; sealed weights are clamped nonnegative", i, w)
		}
	}
	return nil
}

// countingReader tracks the absolute stream position for offset
// verification and padding consumption.
type countingReader struct {
	r io.Reader
	n uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += uint64(n)
	return n, err
}

// skipPadding consumes bytes up to the target offset, requiring every
// one to be zero: inter-section gaps are alignment padding, not a
// place to smuggle unsigned data.
func (c *countingReader) skipPadding(target uint64) error {
	if c.n > target {
		return invalidf("stream position %d past expected offset %d", c.n, target)
	}
	var buf [sectionAlign]byte
	for c.n < target {
		k := target - c.n
		if k > sectionAlign {
			k = sectionAlign
		}
		if err := readFull(c, buf[:k], "padding"); err != nil {
			return err
		}
		for _, b := range buf[:k] {
			if b != 0 {
				return invalidf("nonzero padding before offset %d", target)
			}
		}
	}
	return nil
}

// readFull wraps io.ReadFull with the truncation error class.
func readFull(r io.Reader, p []byte, what string) error {
	if _, err := io.ReadFull(r, p); err != nil {
		return invalidf("truncated in %s: %v", what, err)
	}
	return nil
}

// The decoders grow their result as bytes actually arrive: initial
// capacity is capped, so a length field lying about a huge section
// costs the attacker a full stream of real bytes, not us a giant
// allocation up front.

const maxInitElems = 1 << 17 // ~1MiB of 8-byte elements

func initCap(count uint64) int {
	if count > maxInitElems {
		return maxInitElems
	}
	return int(count)
}

func decodeU32(r io.Reader, count uint64) ([]uint32, error) {
	out := make([]uint32, 0, initCap(count))
	buf := make([]byte, chunkBytes)
	for remaining := count; remaining > 0; {
		k := uint64(len(buf) / 4)
		if k > remaining {
			k = remaining
		}
		if err := readFull(r, buf[:k*4], "array payload"); err != nil {
			return nil, err
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, binary.LittleEndian.Uint32(buf[i*4:]))
		}
		remaining -= k
	}
	return out, nil
}

func decodeI32(r io.Reader, count uint64) ([]int32, error) {
	out := make([]int32, 0, initCap(count))
	buf := make([]byte, chunkBytes)
	for remaining := count; remaining > 0; {
		k := uint64(len(buf) / 4)
		if k > remaining {
			k = remaining
		}
		if err := readFull(r, buf[:k*4], "array payload"); err != nil {
			return nil, err
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[i*4:])))
		}
		remaining -= k
	}
	return out, nil
}

func decodeI64(r io.Reader, count uint64) ([]int64, error) {
	out := make([]int64, 0, initCap(count))
	buf := make([]byte, chunkBytes)
	for remaining := count; remaining > 0; {
		k := uint64(len(buf) / 8)
		if k > remaining {
			k = remaining
		}
		if err := readFull(r, buf[:k*8], "array payload"); err != nil {
			return nil, err
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[i*8:])))
		}
		remaining -= k
	}
	return out, nil
}

func decodeF64(r io.Reader, count uint64) ([]float64, error) {
	out := make([]float64, 0, initCap(count))
	buf := make([]byte, chunkBytes)
	for remaining := count; remaining > 0; {
		k := uint64(len(buf) / 8)
		if k > remaining {
			k = remaining
		}
		if err := readFull(r, buf[:k*8], "array payload"); err != nil {
			return nil, err
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:])))
		}
		remaining -= k
	}
	return out, nil
}
