package snapshot

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

// testArtifact builds a small consistent artifact: a 4-cycle with a CH
// index shape (the CH arrays here are structurally valid, not the
// product of a real contraction — this package only checks structure).
func testArtifact(index string) *Artifact {
	art := &Artifact{
		Meta: Meta{
			FormatVersion: FormatVersion,
			Writer:        "test-writer",
			Mechanism:     "synthetic_graph",
			Epsilon:       1,
			NoiseScale:    4,
			N:             4,
			M:             4,
			Index:         index,
			Receipt:       json.RawMessage(`{"mechanism":"synthetic_graph","epsilon":1,"time":"2026-01-02T03:04:05Z"}`),
		},
		EdgeFrom: []uint32{0, 1, 2, 3},
		EdgeTo:   []uint32{1, 2, 3, 0},
		Weights:  []float64{1, 2.5, 3, 0},
	}
	switch index {
	case "ch":
		art.CHUpOff = []int32{0, 2, 3, 4, 4}
		art.CHUpTo = []int32{1, 3, 2, 3}
		art.CHUpWt = []float64{1, 0, 2.5, 3}
	case "alt":
		art.Meta.Landmarks = 2
		art.ALTLandmarks = []float64{0, 1, 3.5, 0, 1, 0, 2.5, 1}
	case "hl":
		art.CHUpOff = []int32{0, 2, 3, 4, 4}
		art.CHUpTo = []int32{1, 3, 2, 3}
		art.CHUpWt = []float64{1, 0, 2.5, 3}
		art.HLLabOff = []int64{0, 2, 3, 4, 5}
		art.HLLabHub = []int32{1, 3, 2, 3, 3}
		art.HLLabDist = []float64{0, 1, 0, 0, 0}
	}
	return art
}

func seal(t *testing.T, art *Artifact, opts WriteOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, art, opts); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	for _, index := range []string{"", "ch", "alt", "hl"} {
		name := index
		if name == "" {
			name = "none"
		}
		t.Run(name, func(t *testing.T) {
			want := testArtifact(index)
			data := seal(t, want, WriteOptions{})
			got, info, err := Read(bytes.NewReader(data), ReadOptions{})
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if info.Signed || info.Verified {
				t.Fatalf("unsigned artifact reported signed=%v verified=%v", info.Signed, info.Verified)
			}
			if info.Writer != "test-writer" || info.FormatVersion != FormatVersion {
				t.Fatalf("info = %+v", info)
			}
			checkEqualArtifacts(t, want, got)
		})
	}
}

func checkEqualArtifacts(t *testing.T, want, got *Artifact) {
	t.Helper()
	wantMeta, _ := json.Marshal(want.Meta)
	gotMeta, _ := json.Marshal(got.Meta)
	if !bytes.Equal(wantMeta, gotMeta) {
		t.Errorf("meta changed:\nwant %s\ngot  %s", wantMeta, gotMeta)
	}
	eqU32 := func(name string, a, b []uint32) {
		if len(a) != len(b) {
			t.Fatalf("%s: %d entries, want %d", name, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, b[i], a[i])
			}
		}
	}
	eqI32 := func(name string, a, b []int32) {
		if len(a) != len(b) {
			t.Fatalf("%s: %d entries, want %d", name, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, b[i], a[i])
			}
		}
	}
	eqF64 := func(name string, a, b []float64) {
		if len(a) != len(b) {
			t.Fatalf("%s: %d entries, want %d", name, len(b), len(a))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s[%d] = %v, want %v (bit-exact)", name, i, b[i], a[i])
			}
		}
	}
	eqI64 := func(name string, a, b []int64) {
		if len(a) != len(b) {
			t.Fatalf("%s: %d entries, want %d", name, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, b[i], a[i])
			}
		}
	}
	eqU32("EdgeFrom", want.EdgeFrom, got.EdgeFrom)
	eqU32("EdgeTo", want.EdgeTo, got.EdgeTo)
	eqF64("Weights", want.Weights, got.Weights)
	eqI32("CHUpOff", want.CHUpOff, got.CHUpOff)
	eqI32("CHUpTo", want.CHUpTo, got.CHUpTo)
	eqF64("CHUpWt", want.CHUpWt, got.CHUpWt)
	eqF64("ALTLandmarks", want.ALTLandmarks, got.ALTLandmarks)
	eqI64("HLLabOff", want.HLLabOff, got.HLLabOff)
	eqI32("HLLabHub", want.HLLabHub, got.HLLabHub)
	eqF64("HLLabDist", want.HLLabDist, got.HLLabDist)
}

func TestSectionAlignment(t *testing.T) {
	data := seal(t, testArtifact("ch"), WriteOptions{})
	_, info, err := Read(bytes.NewReader(data), ReadOptions{})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for _, s := range info.Sections {
		if s.Offset%sectionAlign != 0 {
			t.Errorf("%s section at offset %d, not %d-byte aligned", s.Name, s.Offset, sectionAlign)
		}
	}
}

func TestDeterministicSeal(t *testing.T) {
	_, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	a := seal(t, testArtifact("ch"), WriteOptions{SigningKey: priv})
	b := seal(t, testArtifact("ch"), WriteOptions{SigningKey: priv})
	if !bytes.Equal(a, b) {
		t.Fatal("sealing the same artifact twice produced different bytes")
	}
}

func TestSignatureVerifies(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	data := seal(t, testArtifact(""), WriteOptions{SigningKey: priv})
	_, info, err := Read(bytes.NewReader(data), ReadOptions{VerifyKey: pub})
	if err != nil {
		t.Fatalf("Read with verify key: %v", err)
	}
	if !info.Signed || !info.Verified {
		t.Fatalf("signed artifact reported signed=%v verified=%v", info.Signed, info.Verified)
	}

	// The wrong key must be rejected.
	otherPub, _, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(bytes.NewReader(data), ReadOptions{VerifyKey: otherPub}); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong key: err = %v, want ErrBadSignature", err)
	}
	// An unsigned artifact must be rejected when verification is on.
	unsigned := seal(t, testArtifact(""), WriteOptions{})
	if _, _, err := Read(bytes.NewReader(unsigned), ReadOptions{VerifyKey: pub}); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("unsigned: err = %v, want ErrBadSignature", err)
	}
}

func TestTamperRejected(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	data := seal(t, testArtifact("ch"), WriteOptions{SigningKey: priv})

	// Flip one bit at every byte position; every mutation must fail
	// verified reads, and none may panic.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		art, _, err := Read(bytes.NewReader(mut), ReadOptions{VerifyKey: pub})
		if err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
		if !errors.Is(err, ErrInvalid) {
			t.Fatalf("bit flip at byte %d: error %v does not wrap ErrInvalid", i, err)
		}
		if art != nil {
			t.Fatalf("bit flip at byte %d returned a partial artifact", i)
		}
	}
}

func TestTruncationRejected(t *testing.T) {
	data := seal(t, testArtifact("alt"), WriteOptions{})
	for _, cut := range []int{0, 1, 7, 8, 55, 56, 57, 100, len(data) / 2, len(data) - 1} {
		if cut >= len(data) {
			continue
		}
		art, _, err := Read(bytes.NewReader(data[:cut]), ReadOptions{})
		if !errors.Is(err, ErrInvalid) {
			t.Fatalf("truncation at %d: err = %v, want ErrInvalid", cut, err)
		}
		if art != nil {
			t.Fatalf("truncation at %d returned a partial artifact", cut)
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	data := seal(t, testArtifact(""), WriteOptions{})
	data = append(data, 0xFF)
	if _, _, err := Read(bytes.NewReader(data), ReadOptions{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("trailing garbage: err = %v, want ErrInvalid", err)
	}
}

func TestUnknownVersionRejected(t *testing.T) {
	data := seal(t, testArtifact(""), WriteOptions{})
	mut := append([]byte(nil), data...)
	mut[8] = 99 // header version field
	if _, _, err := Read(bytes.NewReader(mut), ReadOptions{}); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("version bump: err = %v, want ErrUnknownVersion", err)
	}
}

// TestFormatVersion1RoundTrip pins backward compatibility: artifacts
// written at format version 1 (everything but hub labels) must keep
// reading under the version-2 reader, bit for bit.
func TestFormatVersion1RoundTrip(t *testing.T) {
	for _, index := range []string{"", "ch", "alt"} {
		name := index
		if name == "" {
			name = "none"
		}
		t.Run(name, func(t *testing.T) {
			want := testArtifact(index)
			want.Meta.FormatVersion = 1
			data := seal(t, want, WriteOptions{FormatVersion: 1})
			got, info, err := Read(bytes.NewReader(data), ReadOptions{})
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if info.FormatVersion != 1 {
				t.Fatalf("info reports version %d, want 1", info.FormatVersion)
			}
			checkEqualArtifacts(t, want, got)
		})
	}
}

// TestFormatVersion1RejectsHubLabels: version 1 has no hub-label
// sections, so asking the writer to downlevel an "hl" artifact is an
// error, not silent data loss.
func TestFormatVersion1RejectsHubLabels(t *testing.T) {
	art := testArtifact("hl")
	art.Meta.FormatVersion = 1
	if err := Write(io.Discard, art, WriteOptions{FormatVersion: 1}); err == nil {
		t.Fatal("Write emitted hub labels into a version-1 container")
	}
}

// TestWriteRejectsVersionSkew: the meta document restates the container
// version inside the signed payload chain, so the two must agree.
func TestWriteRejectsVersionSkew(t *testing.T) {
	art := testArtifact("")
	if err := Write(io.Discard, art, WriteOptions{FormatVersion: 1}); err == nil {
		t.Fatal("Write accepted meta version 2 in a version-1 container")
	}
	if err := Write(io.Discard, art, WriteOptions{FormatVersion: 7}); err == nil {
		t.Fatal("Write accepted an unsupported container version")
	}
}

func TestLengthLyingDoesNotAllocate(t *testing.T) {
	// A header claiming a multi-gigabyte weights section backed by a
	// short stream must fail on truncation, cheaply, instead of
	// allocating the claimed length up front.
	data := seal(t, testArtifact(""), WriteOptions{})
	// Rewrite meta's M field indirectly: simplest robust approach is a
	// synthetic stream — magic + header claiming a huge manifest.
	mut := append([]byte(nil), data[:56]...)
	for i := 16; i < 24; i++ { // manifestLen = huge
		mut[i] = 0xFF
	}
	art, _, err := Read(bytes.NewReader(mut), ReadOptions{})
	if err == nil || art != nil {
		t.Fatalf("length-lying header accepted: art=%v err=%v", art, err)
	}
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

func TestWriterRejectsInconsistentArtifact(t *testing.T) {
	cases := map[string]func(*Artifact){
		"edge-count":      func(a *Artifact) { a.Meta.M = 5 },
		"endpoint-range":  func(a *Artifact) { a.EdgeFrom[0] = 9 },
		"negative-weight": func(a *Artifact) { a.Weights[0] = -1 },
		"nan-weight":      func(a *Artifact) { a.Weights[0] = math.NaN() },
		"no-receipt":      func(a *Artifact) { a.Meta.Receipt = nil },
		"bad-index":       func(a *Artifact) { a.Meta.Index = "btree" },
		"stray-alt-rows":  func(a *Artifact) { a.ALTLandmarks = []float64{1} },
		"stray-hl-arena":  func(a *Artifact) { a.HLLabHub = []int32{0} },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			art := testArtifact("")
			mutate(art)
			if err := Write(io.Discard, art, WriteOptions{}); err == nil {
				t.Fatal("Write accepted an inconsistent artifact")
			}
		})
	}
	hlCases := map[string]func(*Artifact){
		"hl-short-lab-off":     func(a *Artifact) { a.HLLabOff = a.HLLabOff[:3] },
		"hl-arena-mismatch":    func(a *Artifact) { a.HLLabDist = a.HLLabDist[:len(a.HLLabDist)-1] },
		"hl-off-past-arena":    func(a *Artifact) { a.HLLabOff[len(a.HLLabOff)-1]++ },
		"hl-alt-rows":          func(a *Artifact) { a.ALTLandmarks = []float64{1} },
		"hl-missing-ch-arrays": func(a *Artifact) { a.CHUpOff = nil },
	}
	for name, mutate := range hlCases {
		t.Run(name, func(t *testing.T) {
			art := testArtifact("hl")
			mutate(art)
			if err := Write(io.Discard, art, WriteOptions{}); err == nil {
				t.Fatal("Write accepted an inconsistent artifact")
			}
		})
	}
}

func TestKeyPEMRoundTrip(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	privPEM, err := MarshalPrivateKeyPEM(priv)
	if err != nil {
		t.Fatal(err)
	}
	pubPEM, err := MarshalPublicKeyPEM(pub)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(privPEM), "PRIVATE KEY") || !strings.Contains(string(pubPEM), "PUBLIC KEY") {
		t.Fatalf("unexpected PEM headers:\n%s\n%s", privPEM, pubPEM)
	}
	priv2, err := ParsePrivateKeyPEM(privPEM)
	if err != nil {
		t.Fatal(err)
	}
	pub2, err := ParsePublicKeyPEM(pubPEM)
	if err != nil {
		t.Fatal(err)
	}
	if !priv.Equal(priv2) || !pub.Equal(pub2) {
		t.Fatal("PEM round trip changed the keys")
	}
	if _, err := ParsePrivateKeyPEM(pubPEM); err == nil {
		t.Fatal("public PEM accepted as a private key")
	}
	if _, err := ParsePublicKeyPEM(privPEM); err == nil {
		t.Fatal("private PEM accepted as a public key")
	}
}

func TestWriterVersionNonEmpty(t *testing.T) {
	if v := WriterVersion(); v == "" {
		t.Fatal("WriterVersion returned an empty string")
	}
}
