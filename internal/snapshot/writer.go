package snapshot

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// WriteOptions configures Write.
type WriteOptions struct {
	// SigningKey, when non-nil, signs the manifest with ed25519;
	// consumers holding the public key can then verify provenance.
	// Signing is deterministic, so re-sealing the same release yields
	// byte-identical artifacts.
	SigningKey ed25519.PrivateKey

	// FormatVersion selects the container version to emit; 0 means the
	// current FormatVersion. Older versions exist for compatibility
	// testing and for consumers pinned to old readers — an artifact
	// whose index kind the requested version cannot express (hub labels
	// before version 2) is an error.
	FormatVersion uint32
}

// chunkBytes sizes the encode/decode scratch buffer: large enough to
// amortize per-Write overhead, small enough to keep the streaming
// promise (memory use independent of artifact size).
const chunkBytes = 64 * 1024

// Write serializes the artifact to w in container format. The arrays
// are streamed through a fixed-size scratch buffer — nothing
// proportional to the artifact is buffered — in two passes over the
// in-memory arrays: one to compute the section digests that the
// header-side table needs, one to emit the bytes. It validates the
// artifact's internal consistency first so a malformed artifact is an
// error here, not a time bomb for readers.
func Write(w io.Writer, art *Artifact, opts WriteOptions) error {
	version := opts.FormatVersion
	if version == 0 {
		version = FormatVersion
	}
	if version < MinFormatVersion || version > FormatVersion {
		return fmt.Errorf("snapshot: cannot write format version %d (supported: %d..%d)", version, MinFormatVersion, FormatVersion)
	}
	if version < 2 && art.Meta.Index == "hl" {
		return fmt.Errorf("snapshot: format version %d cannot carry hub labels (need >= 2)", version)
	}
	if art.Meta.FormatVersion != int(version) {
		return fmt.Errorf("snapshot: meta declares format version %d, writing %d", art.Meta.FormatVersion, version)
	}
	if err := validateArtifact(art); err != nil {
		return err
	}
	metaJSON, err := json.Marshal(&art.Meta)
	if err != nil {
		return fmt.Errorf("snapshot: encoding meta: %w", err)
	}
	if len(metaJSON) > maxMetaLen {
		return fmt.Errorf("snapshot: meta document is %d bytes, exceeding the %d-byte cap", len(metaJSON), maxMetaLen)
	}

	secs := []section{
		{kind: sectionMeta, length: uint64(len(metaJSON)), encode: encodeBytes(metaJSON)},
		{kind: sectionEdgeFrom, length: 4 * uint64(len(art.EdgeFrom)), encode: encodeU32(art.EdgeFrom)},
		{kind: sectionEdgeTo, length: 4 * uint64(len(art.EdgeTo)), encode: encodeU32(art.EdgeTo)},
		{kind: sectionWeights, length: 8 * uint64(len(art.Weights)), encode: encodeF64(art.Weights)},
	}
	switch art.Meta.Index {
	case "ch":
		secs = append(secs,
			section{kind: sectionCHUpOff, length: 4 * uint64(len(art.CHUpOff)), encode: encodeI32(art.CHUpOff)},
			section{kind: sectionCHUpTo, length: 4 * uint64(len(art.CHUpTo)), encode: encodeI32(art.CHUpTo)},
			section{kind: sectionCHUpWt, length: 8 * uint64(len(art.CHUpWt)), encode: encodeF64(art.CHUpWt)},
		)
	case "alt":
		secs = append(secs,
			section{kind: sectionALTLandmarks, length: 8 * uint64(len(art.ALTLandmarks)), encode: encodeF64(art.ALTLandmarks)},
		)
	case "hl":
		secs = append(secs,
			section{kind: sectionCHUpOff, length: 4 * uint64(len(art.CHUpOff)), encode: encodeI32(art.CHUpOff)},
			section{kind: sectionCHUpTo, length: 4 * uint64(len(art.CHUpTo)), encode: encodeI32(art.CHUpTo)},
			section{kind: sectionCHUpWt, length: 8 * uint64(len(art.CHUpWt)), encode: encodeF64(art.CHUpWt)},
			section{kind: sectionHLLabOff, length: 8 * uint64(len(art.HLLabOff)), encode: encodeI64(art.HLLabOff)},
			section{kind: sectionHLLabHub, length: 4 * uint64(len(art.HLLabHub)), encode: encodeI32(art.HLLabHub)},
			section{kind: sectionHLLabDist, length: 8 * uint64(len(art.HLLabDist)), encode: encodeF64(art.HLLabDist)},
		)
	}

	// Fix the layout: sections start 64-byte-aligned after the table,
	// the manifest follows the last section's padding, the signature
	// follows the manifest.
	off := uint64(len(magic)) + headerSize + tableEntrySize*uint64(len(secs))
	for i := range secs {
		off = align64(off)
		secs[i].offset = off
		off += secs[i].length
	}
	manifestOff := align64(off)

	// Pass 1: digest each section without emitting anything.
	for i := range secs {
		h := sha256.New()
		if err := secs[i].encode(h); err != nil {
			return fmt.Errorf("snapshot: hashing %s section: %w", sectionName(secs[i].kind), err)
		}
		h.Sum(secs[i].digest[:0])
	}

	man := manifest{FormatVersion: version, Writer: art.Meta.Writer}
	for _, s := range secs {
		man.Sections = append(man.Sections, SectionInfo{
			Kind:   s.kind,
			Name:   sectionName(s.kind),
			Offset: s.offset,
			Length: s.length,
			SHA256: hex.EncodeToString(s.digest[:]),
		})
	}
	manifestJSON, err := json.Marshal(&man)
	if err != nil {
		return fmt.Errorf("snapshot: encoding manifest: %w", err)
	}
	if len(manifestJSON) > maxManifestLen {
		return fmt.Errorf("snapshot: manifest is %d bytes, exceeding the %d-byte cap", len(manifestJSON), maxManifestLen)
	}
	var sig []byte
	if opts.SigningKey != nil {
		if len(opts.SigningKey) != ed25519.PrivateKeySize {
			return fmt.Errorf("snapshot: signing key has %d bytes, want %d", len(opts.SigningKey), ed25519.PrivateKeySize)
		}
		sig = ed25519.Sign(opts.SigningKey, manifestJSON)
	}
	sigOff := manifestOff + uint64(len(manifestJSON))

	// Pass 2: emit. The counting writer asserts that what lands on the
	// wire matches the layout the header promised.
	cw := &countingWriter{w: w}
	if _, err := cw.Write([]byte(magic)); err != nil {
		return err
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(secs)))
	binary.LittleEndian.PutUint64(hdr[8:], manifestOff)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(manifestJSON)))
	binary.LittleEndian.PutUint64(hdr[24:], sigOff)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(sig)))
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	var ent [tableEntrySize]byte
	for _, s := range secs {
		binary.LittleEndian.PutUint32(ent[0:], s.kind)
		binary.LittleEndian.PutUint32(ent[4:], 0)
		binary.LittleEndian.PutUint64(ent[8:], s.offset)
		binary.LittleEndian.PutUint64(ent[16:], s.length)
		copy(ent[24:], s.digest[:])
		if _, err := cw.Write(ent[:]); err != nil {
			return err
		}
	}
	for _, s := range secs {
		if err := cw.pad(s.offset); err != nil {
			return err
		}
		if err := s.encode(cw); err != nil {
			return err
		}
		if cw.n != s.offset+s.length {
			return fmt.Errorf("snapshot: internal error: %s section wrote %d bytes, layout promised %d",
				sectionName(s.kind), cw.n-s.offset, s.length)
		}
	}
	if err := cw.pad(manifestOff); err != nil {
		return err
	}
	if _, err := cw.Write(manifestJSON); err != nil {
		return err
	}
	if len(sig) > 0 {
		if _, err := cw.Write(sig); err != nil {
			return err
		}
	}
	return nil
}

// validateArtifact checks the artifact's internal consistency: array
// lengths against Meta's counts, endpoints against N, index arrays
// against the declared index kind. Writers get a hard error instead of
// producing a container every reader would reject.
func validateArtifact(art *Artifact) error {
	m := art.Meta
	if m.N < 0 || uint64(m.N) > math.MaxUint32 {
		return fmt.Errorf("snapshot: vertex count %d outside [0, 2^32)", m.N)
	}
	if m.M < 0 || uint64(m.M) > math.MaxUint32 {
		return fmt.Errorf("snapshot: edge count %d outside [0, 2^32)", m.M)
	}
	if len(art.EdgeFrom) != m.M || len(art.EdgeTo) != m.M || len(art.Weights) != m.M {
		return fmt.Errorf("snapshot: edge arrays have %d/%d/%d entries for %d edges",
			len(art.EdgeFrom), len(art.EdgeTo), len(art.Weights), m.M)
	}
	for i := 0; i < m.M; i++ {
		if uint64(art.EdgeFrom[i]) >= uint64(m.N) || uint64(art.EdgeTo[i]) >= uint64(m.N) {
			return fmt.Errorf("snapshot: edge %d joins (%d, %d) outside [0, %d)", i, art.EdgeFrom[i], art.EdgeTo[i], m.N)
		}
	}
	for i, w := range art.Weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("snapshot: released weight %d is %g; sealed weights are clamped nonnegative", i, w)
		}
	}
	hlLen := len(art.HLLabOff) + len(art.HLLabHub) + len(art.HLLabDist)
	switch m.Index {
	case "":
		if len(art.CHUpOff) != 0 || len(art.CHUpTo) != 0 || len(art.CHUpWt) != 0 || len(art.ALTLandmarks) != 0 || hlLen != 0 {
			return fmt.Errorf("snapshot: index arrays present without a declared index kind")
		}
	case "ch":
		if m.Directed {
			return fmt.Errorf("snapshot: CH index on a directed topology")
		}
		if len(art.CHUpOff) != m.N+1 {
			return fmt.Errorf("snapshot: CH offsets have %d entries for %d vertices (want %d)", len(art.CHUpOff), m.N, m.N+1)
		}
		if len(art.CHUpTo) != len(art.CHUpWt) {
			return fmt.Errorf("snapshot: CH upward arrays disagree: %d targets, %d weights", len(art.CHUpTo), len(art.CHUpWt))
		}
		if len(art.ALTLandmarks) != 0 {
			return fmt.Errorf("snapshot: ALT rows present alongside a CH index")
		}
		if hlLen != 0 {
			return fmt.Errorf("snapshot: hub-label arrays present alongside a plain CH index")
		}
	case "hl":
		if m.Directed {
			return fmt.Errorf("snapshot: HL index on a directed topology")
		}
		if len(art.CHUpOff) != m.N+1 {
			return fmt.Errorf("snapshot: CH offsets have %d entries for %d vertices (want %d)", len(art.CHUpOff), m.N, m.N+1)
		}
		if len(art.CHUpTo) != len(art.CHUpWt) {
			return fmt.Errorf("snapshot: CH upward arrays disagree: %d targets, %d weights", len(art.CHUpTo), len(art.CHUpWt))
		}
		if len(art.HLLabOff) != m.N+1 {
			return fmt.Errorf("snapshot: HL label offsets have %d entries for %d vertices (want %d)", len(art.HLLabOff), m.N, m.N+1)
		}
		if len(art.HLLabHub) != len(art.HLLabDist) {
			return fmt.Errorf("snapshot: HL label arena disagrees: %d hubs, %d distances", len(art.HLLabHub), len(art.HLLabDist))
		}
		if last := art.HLLabOff[m.N]; last < 0 || last != int64(len(art.HLLabHub)) {
			return fmt.Errorf("snapshot: HL label offsets end at %d for %d arena entries", last, len(art.HLLabHub))
		}
		if len(art.ALTLandmarks) != 0 {
			return fmt.Errorf("snapshot: ALT rows present alongside an HL index")
		}
	case "alt":
		if m.Directed {
			return fmt.Errorf("snapshot: ALT index on a directed topology")
		}
		if m.Landmarks < 0 || m.Landmarks > 1<<15 {
			return fmt.Errorf("snapshot: landmark count %d outside [0, %d]", m.Landmarks, 1<<15)
		}
		if len(art.ALTLandmarks) != m.Landmarks*m.N {
			return fmt.Errorf("snapshot: ALT rows have %d entries for %d landmarks x %d vertices", len(art.ALTLandmarks), m.Landmarks, m.N)
		}
		if len(art.CHUpOff) != 0 || len(art.CHUpTo) != 0 || len(art.CHUpWt) != 0 || hlLen != 0 {
			return fmt.Errorf("snapshot: CH or HL arrays present alongside an ALT index")
		}
	default:
		return fmt.Errorf("snapshot: unknown index kind %q", m.Index)
	}
	if m.Index != "alt" && m.Landmarks != 0 {
		return fmt.Errorf("snapshot: landmark count %d without an ALT index", m.Landmarks)
	}
	if len(m.Receipt) == 0 {
		return fmt.Errorf("snapshot: artifact carries no receipt")
	}
	return nil
}

// section pairs one table entry with its payload encoder.
type section struct {
	kind   uint32
	offset uint64
	length uint64
	digest [sha256.Size]byte
	encode func(io.Writer) error
}

// countingWriter tracks the absolute offset so the writer can assert
// layout invariants and emit alignment padding.
type countingWriter struct {
	w   io.Writer
	n   uint64
	pd  [sectionAlign]byte // zeros
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += uint64(n)
	if err != nil {
		c.err = fmt.Errorf("snapshot: write: %w", err)
	}
	return n, c.err
}

// pad writes zeros up to the target offset.
func (c *countingWriter) pad(target uint64) error {
	if c.n > target {
		return fmt.Errorf("snapshot: internal error: position %d past target offset %d", c.n, target)
	}
	for c.n < target {
		k := target - c.n
		if k > sectionAlign {
			k = sectionAlign
		}
		if _, err := c.Write(c.pd[:k]); err != nil {
			return err
		}
	}
	return nil
}

// The encoders stream a slice through the shared chunk size; each
// returns a closure so the section list can carry heterogeneous
// payloads uniformly.

func encodeBytes(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

func encodeU32(vals []uint32) func(io.Writer) error {
	return func(w io.Writer) error {
		buf := make([]byte, chunkBytes)
		for i := 0; i < len(vals); {
			n := 0
			for i < len(vals) && n+4 <= len(buf) {
				binary.LittleEndian.PutUint32(buf[n:], vals[i])
				n += 4
				i++
			}
			if _, err := w.Write(buf[:n]); err != nil {
				return err
			}
		}
		return nil
	}
}

func encodeI32(vals []int32) func(io.Writer) error {
	return func(w io.Writer) error {
		buf := make([]byte, chunkBytes)
		for i := 0; i < len(vals); {
			n := 0
			for i < len(vals) && n+4 <= len(buf) {
				binary.LittleEndian.PutUint32(buf[n:], uint32(vals[i]))
				n += 4
				i++
			}
			if _, err := w.Write(buf[:n]); err != nil {
				return err
			}
		}
		return nil
	}
}

func encodeI64(vals []int64) func(io.Writer) error {
	return func(w io.Writer) error {
		buf := make([]byte, chunkBytes)
		for i := 0; i < len(vals); {
			n := 0
			for i < len(vals) && n+8 <= len(buf) {
				binary.LittleEndian.PutUint64(buf[n:], uint64(vals[i]))
				n += 8
				i++
			}
			if _, err := w.Write(buf[:n]); err != nil {
				return err
			}
		}
		return nil
	}
}

func encodeF64(vals []float64) func(io.Writer) error {
	return func(w io.Writer) error {
		buf := make([]byte, chunkBytes)
		for i := 0; i < len(vals); {
			n := 0
			for i < len(vals) && n+8 <= len(buf) {
				binary.LittleEndian.PutUint64(buf[n:], math.Float64bits(vals[i]))
				n += 8
				i++
			}
			if _, err := w.Write(buf[:n]); err != nil {
				return err
			}
		}
		return nil
	}
}
