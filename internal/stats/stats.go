// Package stats provides the summary statistics used by the experiment
// harness: streaming moments, quantiles, and least-squares slope fits on
// log-log data for measuring empirical growth exponents.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of observations.
type Summary struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations (Welford)
	min  float64
	max  float64
	vals []float64 // retained for quantiles
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	s.vals = append(s.vals, x)
}

// AddAll records a batch of observations.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Summary) Max() float64 { return s.max }

// Quantile returns the p-th empirical quantile (linear interpolation
// between order statistics). p must be in [0, 1].
func (s *Summary) Quantile(p float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if !(p >= 0 && p <= 1) {
		panic(fmt.Sprintf("stats: quantile p=%g out of [0,1]", p))
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the empirical median.
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It panics on length mismatch and returns NaNs for fewer than 2 points.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: LinearFit lengths %d and %d", len(x), len(y)))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return math.NaN(), math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return math.NaN(), math.NaN()
	}
	slope = (n*sxy - sx*sy) / denom
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// LogLogSlope fits y ~ C * x^alpha by least squares on (ln x, ln y) and
// returns alpha. Points with non-positive coordinates are skipped. This is
// how experiments measure the empirical growth exponent of error curves:
// polylogarithmic growth shows up as alpha near 0, sqrt growth as 0.5,
// linear growth as 1.
func LogLogSlope(x, y []float64) float64 {
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	slope, _ := LinearFit(lx, ly)
	return slope
}

// SemiLogSlope fits y ~ a + b*ln(x) and returns b, for distinguishing
// logarithmic from polynomial growth.
func SemiLogSlope(x, y []float64) float64 {
	var lx []float64
	var yy []float64
	for i := range x {
		if x[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			yy = append(yy, y[i])
		}
	}
	slope, _ := LinearFit(lx, yy)
	return slope
}

// MeanOf returns the mean of a slice (NaN when empty).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// MaxOf returns the maximum of a slice (NaN when empty).
func MaxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
