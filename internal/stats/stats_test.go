package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	s := &Summary{}
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatal("N")
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %g", s.Mean())
	}
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %g", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
	if math.Abs(s.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("std = %g", s.Std())
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := &Summary{}
	if s.Mean() != 0 || s.Var() != 0 {
		t.Error("empty summary nonzero")
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty quantile not NaN")
	}
	if !math.IsNaN(s.StdErr()) {
		t.Error("empty stderr not NaN")
	}
}

func TestSummarySingle(t *testing.T) {
	s := &Summary{}
	s.Add(3)
	if s.Mean() != 3 || s.Var() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Error("single observation stats wrong")
	}
	if s.Quantile(0.9) != 3 {
		t.Error("single quantile")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := &Summary{}
	s.AddAll([]float64{0, 10})
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("median = %g", got)
	}
	if s.Quantile(0) != 0 || s.Quantile(1) != 10 {
		t.Error("extreme quantiles")
	}
	if s.Median() != 5 {
		t.Error("Median helper")
	}
}

func TestQuantileValidation(t *testing.T) {
	s := &Summary{}
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Error("p=2 accepted")
		}
	}()
	s.Quantile(2)
}

func TestSummaryMatchesWelfordProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var clean []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		s := &Summary{}
		s.AddAll(clean)
		mean := 0.0
		for _, x := range clean {
			mean += x
		}
		mean /= float64(len(clean))
		varSum := 0.0
		for _, x := range clean {
			varSum += (x - mean) * (x - mean)
		}
		wantVar := varSum / float64(len(clean)-1)
		return math.Abs(s.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(s.Var()-wantVar) < 1e-6*(1+wantVar)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-3) > 1e-12 {
		t.Errorf("fit = %g, %g", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if s, _ := LinearFit([]float64{1}, []float64{1}); !math.IsNaN(s) {
		t.Error("single point fit not NaN")
	}
	if s, _ := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); !math.IsNaN(s) {
		t.Error("vertical fit not NaN")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestLogLogSlopeRecognizesPowerLaws(t *testing.T) {
	var x, sqrtY, linY, logY []float64
	for n := 4.0; n <= 4096; n *= 2 {
		x = append(x, n)
		sqrtY = append(sqrtY, 3*math.Sqrt(n))
		linY = append(linY, 0.5*n)
		logY = append(logY, math.Pow(math.Log(n), 1.5))
	}
	if s := LogLogSlope(x, sqrtY); math.Abs(s-0.5) > 1e-9 {
		t.Errorf("sqrt slope = %g", s)
	}
	if s := LogLogSlope(x, linY); math.Abs(s-1) > 1e-9 {
		t.Errorf("linear slope = %g", s)
	}
	if s := LogLogSlope(x, logY); s > 0.45 {
		t.Errorf("polylog slope = %g, should be well below 0.5", s)
	}
}

func TestLogLogSlopeSkipsNonPositive(t *testing.T) {
	s := LogLogSlope([]float64{1, 2, 0, 4, 8}, []float64{1, 2, 99, 4, 8})
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("slope = %g (zero-x point should be skipped)", s)
	}
}

func TestSemiLogSlope(t *testing.T) {
	var x, y []float64
	for n := 2.0; n <= 1024; n *= 2 {
		x = append(x, n)
		y = append(y, 3*math.Log(n)+1)
	}
	if s := SemiLogSlope(x, y); math.Abs(s-3) > 1e-9 {
		t.Errorf("semilog slope = %g", s)
	}
}

func TestMeanOfMaxOf(t *testing.T) {
	if MeanOf([]float64{1, 2, 3}) != 2 {
		t.Error("MeanOf")
	}
	if MaxOf([]float64{1, 5, 3}) != 5 {
		t.Error("MaxOf")
	}
	if !math.IsNaN(MeanOf(nil)) || !math.IsNaN(MaxOf(nil)) {
		t.Error("empty not NaN")
	}
}

func TestStdErrShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	small, large := &Summary{}, &Summary{}
	for i := 0; i < 100; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.StdErr() >= small.StdErr() {
		t.Error("stderr did not shrink with more samples")
	}
}
