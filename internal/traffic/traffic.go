// Package traffic synthesizes road networks and congestion data for the
// paper's motivating application (Section 1.1): a navigation service
// whose road map is public but whose observed travel times are private.
// We have no production traces, so this substrate generates the closest
// synthetic equivalent (see DESIGN.md §6): a city street grid with
// removed blocks and fast arterial avenues, plus a time-of-day congestion
// model perturbing free-flow travel times. The resulting weight vectors
// exercise exactly the code paths the paper's mechanisms care about:
// sparse near-planar topology, low-hop shortest paths, bounded weights.
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// City is a synthetic road network: a grid street plan with some blocks
// removed and designated arterial rows/columns, together with free-flow
// travel times per road segment.
type City struct {
	// G is the public road topology.
	G *graph.Graph
	// Side is the grid side length; intersections are (row, col).
	Side int
	// FreeFlow is the travel time of each segment with no congestion.
	FreeFlow []float64
	// Arterial marks segments on arterial avenues (faster free-flow,
	// heavier rush-hour load).
	Arterial []bool
	// MaxTime is an upper bound on any segment travel time under any
	// congestion level; the weight cap M for the bounded-weight
	// mechanisms.
	MaxTime float64
}

// Config controls city generation.
type Config struct {
	// Side is the grid side length (Side*Side intersections). Must be >= 2.
	Side int
	// BlockRemovalProb removes street segments to model parks, rivers and
	// dead ends, while keeping the network connected. Default 0.1.
	BlockRemovalProb float64
	// ArterialEvery makes every n-th row and column an arterial avenue.
	// Default 4; 0 disables arterials.
	ArterialEvery int
	// LocalTime is the free-flow travel time of a local street segment.
	// Default 4 (minutes).
	LocalTime float64
	// ArterialTime is the free-flow time of an arterial segment. Default 2.
	ArterialTime float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Side < 2 {
		return c, fmt.Errorf("traffic: Side must be >= 2, got %d", c.Side)
	}
	if c.BlockRemovalProb == 0 {
		c.BlockRemovalProb = 0.1
	}
	if c.BlockRemovalProb < 0 || c.BlockRemovalProb >= 1 {
		return c, fmt.Errorf("traffic: BlockRemovalProb must be in [0, 1), got %g", c.BlockRemovalProb)
	}
	if c.ArterialEvery == 0 {
		c.ArterialEvery = 4
	}
	if c.LocalTime == 0 {
		c.LocalTime = 4
	}
	if c.ArterialTime == 0 {
		c.ArterialTime = 2
	}
	if c.LocalTime <= 0 || c.ArterialTime <= 0 {
		return c, fmt.Errorf("traffic: travel times must be positive")
	}
	return c, nil
}

// NewCity generates a city from the config. The returned network is
// guaranteed connected: candidate removals that would disconnect it are
// skipped.
func NewCity(cfg Config, rng *rand.Rand) (*City, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	side := c.Side
	full := graph.Grid(side)

	isArterialVertex := func(v int) (row, col bool) {
		i, j := v/side, v%side
		if c.ArterialEvery > 0 {
			row = i%c.ArterialEvery == c.ArterialEvery/2
			col = j%c.ArterialEvery == c.ArterialEvery/2
		}
		return row, col
	}
	segArterial := func(e graph.Edge) bool {
		ri, ci := isArterialVertex(e.From)
		rj, cj := isArterialVertex(e.To)
		horizontal := e.To-e.From == 1
		if horizontal {
			return ri && rj // both endpoints on the same arterial row
		}
		return ci && cj
	}

	// Decide which segments survive. Arterials are never removed; local
	// segments are removed with the configured probability as long as the
	// network stays connected.
	keep := make([]bool, full.M())
	for i := range keep {
		keep[i] = true
	}
	for _, e := range full.Edges() {
		if segArterial(e) {
			continue
		}
		if rng.Float64() >= c.BlockRemovalProb {
			continue
		}
		keep[e.ID] = false
		if !connectedUnder(full, keep) {
			keep[e.ID] = true // removal would disconnect; skip
		}
	}

	g := graph.New(side * side)
	var freeFlow []float64
	var arterial []bool
	for _, e := range full.Edges() {
		if !keep[e.ID] {
			continue
		}
		g.AddEdge(e.From, e.To)
		if segArterial(e) {
			freeFlow = append(freeFlow, c.ArterialTime)
			arterial = append(arterial, true)
		} else {
			freeFlow = append(freeFlow, c.LocalTime)
			arterial = append(arterial, false)
		}
	}
	maxTime := c.LocalTime
	if c.ArterialTime > maxTime {
		maxTime = c.ArterialTime
	}
	return &City{
		G:        g,
		Side:     side,
		FreeFlow: freeFlow,
		Arterial: arterial,
		MaxTime:  maxTime * maxCongestionFactor,
	}, nil
}

// maxCongestionFactor bounds how much congestion can inflate a segment's
// free-flow time; it caps the weight range for the bounded-weight
// mechanisms.
const maxCongestionFactor = 4.0

// connectedUnder reports whether the subgraph of g restricted to kept
// edges is connected.
func connectedUnder(g *graph.Graph, keep []bool) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	seen[0] = true
	stack := []int{0}
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.Adj(v) {
			if keep[h.Edge] && !seen[h.To] {
				seen[h.To] = true
				count++
				stack = append(stack, h.To)
			}
		}
	}
	return count == n
}

// CongestionModel produces a private travel-time vector from the public
// free-flow times: the individual GPS traces a navigation service
// aggregates are exactly what the privacy model protects.
type CongestionModel struct {
	// Hour is the time of day in [0, 24).
	Hour float64
	// Intensity scales the congestion amplitude; 1 is a normal day.
	Intensity float64
	// NoiseFrac adds per-segment idiosyncratic load (fraction of
	// free-flow time). Default 0.25.
	NoiseFrac float64
}

// rushFactor peaks at the 8am and 6pm rush hours.
func rushFactor(hour float64) float64 {
	peak := func(center float64) float64 {
		d := hour - center
		if d > 12 {
			d -= 24
		}
		if d < -12 {
			d += 24
		}
		return math.Exp(-d * d / 4.5)
	}
	return peak(8) + peak(18)
}

// TravelTimes draws one private travel-time vector: per-segment time is
// free-flow inflated by time-of-day congestion (arterials congest twice
// as hard) plus idiosyncratic load, clamped to [freeflow, MaxTime].
func (c *City) TravelTimes(m CongestionModel, rng *rand.Rand) []float64 {
	if m.Intensity == 0 {
		m.Intensity = 1
	}
	if m.NoiseFrac == 0 {
		m.NoiseFrac = 0.25
	}
	rush := rushFactor(m.Hour) * m.Intensity
	w := make([]float64, len(c.FreeFlow))
	for i, ff := range c.FreeFlow {
		load := rush
		if c.Arterial[i] {
			load *= 2
		}
		t := ff * (1 + load + m.NoiseFrac*rng.Float64())
		if t > c.MaxTime {
			t = c.MaxTime
		}
		if t < ff {
			t = ff
		}
		w[i] = t
	}
	return w
}

// Trip is one origin-destination query of the navigation service's read
// side — the workload the release-once / query-many oracles serve.
type Trip struct {
	From, To int
}

// CommuteTrips draws n origin-destination trips for a rush-hour query
// workload: most trips funnel into a handful of employment hubs (the
// pattern that makes release-once serving pay off, since many queries
// share sources and destinations), the remainder are uniform errands.
// hubs <= 0 defaults to 4. All trips have From != To.
func (c *City) CommuteTrips(n, hubs int, rng *rand.Rand) []Trip {
	if hubs <= 0 {
		hubs = 4
	}
	v := c.G.N()
	if v < 2 || n <= 0 {
		return nil
	}
	hubAt := make([]int, hubs)
	for i := range hubAt {
		hubAt[i] = rng.Intn(v)
	}
	trips := make([]Trip, 0, n)
	for len(trips) < n {
		from := rng.Intn(v)
		var to int
		if rng.Float64() < 0.7 {
			to = hubAt[rng.Intn(hubs)] // commute into a hub
		} else {
			to = rng.Intn(v) // errand
		}
		if from == to {
			continue
		}
		trips = append(trips, Trip{From: from, To: to})
	}
	return trips
}

// VertexAt returns the vertex ID of intersection (row, col).
func (c *City) VertexAt(row, col int) int { return row*c.Side + col }

// Intersection returns the (row, col) of a vertex ID.
func (c *City) Intersection(v int) (row, col int) { return v / c.Side, v % c.Side }
