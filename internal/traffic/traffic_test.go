package traffic

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestNewCityConnectedAndSimple(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 5; trial++ {
		city, err := NewCity(Config{Side: 10}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !city.G.Connected() {
			t.Fatal("city disconnected")
		}
		if !city.G.IsSimple() {
			t.Fatal("city has parallel edges")
		}
		if city.G.N() != 100 {
			t.Fatalf("N = %d", city.G.N())
		}
		if len(city.FreeFlow) != city.G.M() || len(city.Arterial) != city.G.M() {
			t.Fatal("per-edge slices wrong length")
		}
	}
}

func TestNewCityRemovesSomeBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	city, err := NewCity(Config{Side: 16, BlockRemovalProb: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	full := graph.Grid(16)
	if city.G.M() >= full.M() {
		t.Errorf("no blocks removed: %d vs %d", city.G.M(), full.M())
	}
}

func TestNewCityHasArterials(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	city, err := NewCity(Config{Side: 12}, rng)
	if err != nil {
		t.Fatal(err)
	}
	arterials, locals := 0, 0
	for i, a := range city.Arterial {
		if a {
			arterials++
			if city.FreeFlow[i] >= 4 {
				t.Error("arterial not faster than local")
			}
		} else {
			locals++
		}
	}
	if arterials == 0 || locals == 0 {
		t.Fatalf("arterials=%d locals=%d", arterials, locals)
	}
}

func TestNewCityValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	if _, err := NewCity(Config{Side: 1}, rng); err == nil {
		t.Error("side=1 accepted")
	}
	if _, err := NewCity(Config{Side: 4, BlockRemovalProb: 1.5}, rng); err == nil {
		t.Error("prob=1.5 accepted")
	}
	if _, err := NewCity(Config{Side: 4, LocalTime: -1}, rng); err == nil {
		t.Error("negative time accepted")
	}
}

func TestTravelTimesBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	city, err := NewCity(Config{Side: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for hour := 0.0; hour < 24; hour += 3 {
		w := city.TravelTimes(CongestionModel{Hour: hour}, rng)
		if len(w) != city.G.M() {
			t.Fatal("length mismatch")
		}
		for i, x := range w {
			if x < city.FreeFlow[i] {
				t.Fatalf("hour %g: segment %d below free flow", hour, i)
			}
			if x > city.MaxTime {
				t.Fatalf("hour %g: segment %d above MaxTime", hour, i)
			}
		}
	}
}

func TestRushHourSlowerThanNight(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	city, err := NewCity(Config{Side: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(w []float64) float64 {
		total := 0.0
		for _, x := range w {
			total += x
		}
		return total
	}
	rush := sum(city.TravelTimes(CongestionModel{Hour: 8}, rng))
	night := sum(city.TravelTimes(CongestionModel{Hour: 3}, rng))
	if rush <= night {
		t.Errorf("rush %g not slower than night %g", rush, night)
	}
}

func TestVertexAtIntersectionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	city, err := NewCity(Config{Side: 7}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 7; row++ {
		for col := 0; col < 7; col++ {
			v := city.VertexAt(row, col)
			r, c := city.Intersection(v)
			if r != row || c != col {
				t.Fatalf("(%d,%d) -> %d -> (%d,%d)", row, col, v, r, c)
			}
		}
	}
}

func TestCityDeterministicWithSeed(t *testing.T) {
	c1, err := NewCity(Config{Side: 8}, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCity(Config{Side: 8}, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if c1.G.M() != c2.G.M() {
		t.Fatal("same seed, different topology")
	}
	for i := range c1.FreeFlow {
		if c1.FreeFlow[i] != c2.FreeFlow[i] {
			t.Fatal("same seed, different free-flow")
		}
	}
}

func TestTravelTimesUsableByMechanisms(t *testing.T) {
	// Travel times must fit the bounded-weight regime: strictly within
	// (0, MaxTime], usable as Dijkstra weights.
	rng := rand.New(rand.NewSource(55))
	city, err := NewCity(Config{Side: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := city.TravelTimes(CongestionModel{Hour: 18, Intensity: 2}, rng)
	if _, err := graph.Dijkstra(city.G, w, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCommuteTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	city, err := NewCity(Config{Side: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	trips := city.CommuteTrips(500, 3, rng)
	if len(trips) != 500 {
		t.Fatalf("got %d trips, want 500", len(trips))
	}
	dests := map[int]int{}
	for _, tr := range trips {
		if tr.From == tr.To {
			t.Fatalf("trip %v has equal endpoints", tr)
		}
		if tr.From < 0 || tr.From >= city.G.N() || tr.To < 0 || tr.To >= city.G.N() {
			t.Fatalf("trip %v out of range", tr)
		}
		dests[tr.To]++
	}
	// The hub bias should concentrate destinations: the top destination
	// must see far more traffic than a uniform draw would give it.
	top := 0
	for _, c := range dests {
		if c > top {
			top = c
		}
	}
	if top < 50 {
		t.Fatalf("top destination has %d trips; hub bias missing", top)
	}
	if got := city.CommuteTrips(0, 3, rng); got != nil {
		t.Fatalf("n=0 should give nil, got %v", got)
	}
}
