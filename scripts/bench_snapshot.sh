#!/usr/bin/env bash
# Snapshot the serving and throughput bench group into BENCH_report.json:
# ns/op and allocs/op for every BenchmarkOracleDistance, BenchmarkOracleBatch,
# BenchmarkFillLaplace, BenchmarkParallelRelease, and (HTTP layer)
# BenchmarkServeDistance/BenchmarkServeDistanceCoalesced/BenchmarkServeBatch
# sub-benchmark, plus enough metadata (go version, GOMAXPROCS, timestamp)
# to compare two snapshots. The coalesced serving bench also reports the
# coalescer's custom "pairs/batch" and "shared-frac" metrics, which land
# in the report as pairs_per_batch and shared_frac. CI runs this on every
# push so a perf regression shows up as a diff in the uploaded report,
# not as an anecdote.
#
# Usage: scripts/bench_snapshot.sh [output.json]   (default BENCH_report.json)
set -euo pipefail
cd "$(dirname "$0")/.."

report="${1:-BENCH_report.json}"

out=$(go test -bench 'BenchmarkOracleDistance|BenchmarkOracleBatch|BenchmarkFillLaplace|BenchmarkParallelRelease' \
    -benchmem -benchtime=20x -run '^$' .)
serveout=$(go test -bench 'BenchmarkServeDistance|BenchmarkServeBatch' \
    -benchmem -benchtime=20x -run '^$' ./internal/serve)
out=$(printf '%s\n%s' "$out" "$serveout")
echo "$out"

goversion=$(go env GOVERSION)
maxprocs=$(go env GOMAXPROCS 2>/dev/null || true)
[ -n "$maxprocs" ] && [ "$maxprocs" != "0" ] || maxprocs=$(getconf _NPROCESSORS_ONLN)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)

echo "$out" | awk -v goversion="$goversion" -v maxprocs="$maxprocs" -v stamp="$stamp" '
BEGIN {
    printf "{\n  \"generated\": \"%s\",\n  \"go\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"benchmarks\": [", stamp, goversion, maxprocs
    first = 1
}
/^Benchmark/ {
    name = $1; ns = ""; allocs = ""; ppb = ""; shared = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "pairs/batch") ppb = $(i - 1)
        if ($i == "shared-frac") shared = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ","
    first = 0
    printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s", name, ns, (allocs == "" ? "null" : allocs)
    if (ppb != "") printf ", \"pairs_per_batch\": %s", ppb
    if (shared != "") printf ", \"shared_frac\": %s", shared
    printf "}"
}
END { print "\n  ]\n}" }
' > "$report"

echo "wrote $report ($(grep -c '"name"' "$report") benchmarks)"
