#!/usr/bin/env bash
# Guards the release-once/query-many acceptance bar: steady-state
# DistanceOracle point queries on the tree, hierarchy, and table oracles
# must not allocate. Fails if any guarded sub-benchmark reports
# allocs/op > 0 (run without -race: the race runtime defeats sync.Pool).
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(go test -bench 'BenchmarkOracleDistance/(tree|hierarchy|table)' -benchmem -benchtime=200x -run '^$' .)
echo "$out"

bad=$(echo "$out" | awk '/^BenchmarkOracleDistance\// && $(NF) == "allocs/op" && $(NF-1)+0 > 0')
if [ -n "$bad" ]; then
    echo >&2
    echo "FAIL: oracle point queries must be allocation-free:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "OK: all guarded oracle benchmarks report 0 allocs/op"
