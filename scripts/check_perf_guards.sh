#!/usr/bin/env bash
# Perf guards for the serving and release hot paths (run without -race:
# the race runtime defeats sync.Pool and skews allocation counts).
#
# 1. Release-once/query-many: steady-state DistanceOracle point queries
#    on the tree, hierarchy, and table oracles must not allocate.
# 2. Vectorized noise: the FillLaplace block sampler (crypto-serial and
#    seeded sub-benchmarks) must not allocate per block.
# 3. Parallel release: on machines with GOMAXPROCS >= 8, the sharded
#    crypto fill must deliver >= 4x wall-clock over the serial path on a
#    >= 1M-edge ReleaseGraph (skipped on smaller machines, where the two
#    paths coincide).
# 4. Indexed serving: on a >= 100k-edge synthetic release, the
#    contraction-hierarchy oracle (WithQueryIndex) must answer point
#    queries >= 10x faster than the unindexed per-query Dijkstra oracle.
# 5. HTTP serving: a point query answered through the dpgraph serve
#    handler (request parse + admission + JSON response) must stay
#    within 2x of the same oracle called directly — the serving layer
#    may not swallow the release-once/query-many win.
# 6. Snapshot restore: unsealing a sealed artifact of a >= 100k-edge
#    indexed release (decode + index rehydration, zero budget) must
#    reach its first answered query >= 50x faster than re-materializing
#    the release and rebuilding its contraction hierarchy.
# 7. Hub labeling + PHAST: on the same >= 100k-edge grid, a hub-label
#    point query must beat the CH bidirectional search >= 5x, a PHAST
#    one-to-all sweep must beat per-pair CH queries >= 3x on a
#    repeated-source batch, and both hot paths must be allocation-free.
# 8. Zero-allocation serving + sweep coalescing: the point and batch
#    HTTP handlers must report 0 allocs/op steady-state; a real daemon
#    over the 100,800-edge grid must push >= 100k pairs/s through the
#    pipelined NDJSON stream endpoint on a hub-label release; and with
#    the cross-request coalescer on, 256 concurrent same-source clients
#    against a CH release must see >= 2x the uncoalesced throughput.
# 9. Fleet scaling + fault recovery: three single-core replicas behind
#    the route coordinator must deliver >= 2x the aggregate qps of one
#    replica (needs >= 6 cores: three pinned replicas plus coordinator
#    plus bench client; skipped on smaller machines, where every process
#    shares the same core and aggregate throughput physically cannot
#    scale), and after a replica is killed -9 mid-fleet the coordinator
#    must evict it within two probe intervals and keep serving within
#    the bench error budget (runs everywhere).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1 + 2: allocation guards -----------------------------------------
out=$(go test -bench 'BenchmarkOracleDistance/(tree|hierarchy|table)|BenchmarkFillLaplace/(crypto-serial|seeded)' \
    -benchmem -benchtime=200x -run '^$' .)
echo "$out"

bad=$(echo "$out" | awk '/^Benchmark(OracleDistance|FillLaplace)\// && $(NF) == "allocs/op" && $(NF-1)+0 > 0')
if [ -n "$bad" ]; then
    echo >&2
    echo "FAIL: guarded benchmarks must be allocation-free:" >&2
    echo "$bad" >&2
    fail=1
else
    echo "OK: oracle point queries and block sampling report 0 allocs/op"
fi

# --- 3: parallel release speedup --------------------------------------
# Effective parallelism: an explicit GOMAXPROCS (container/cgroup
# setups) wins over the online-processor count.
procs="${GOMAXPROCS:-}"
[ -n "$procs" ] || procs=$(go env GOMAXPROCS 2>/dev/null || true)
[ -n "$procs" ] && [ "$procs" != "0" ] || procs=$(getconf _NPROCESSORS_ONLN)
if [ "$procs" -ge 8 ]; then
    # -count=3 and best-of ratios de-flake the gate against noisy
    # neighbors on shared runners: serial takes its fastest run (the
    # hardest comparison), parallel its fastest too.
    out=$(go test -bench 'BenchmarkParallelRelease' -benchtime=5x -count=3 -run '^$' .)
    echo "$out"
    serial=$(echo "$out" | awk '/^BenchmarkParallelRelease\/serial/ {if (min == "" || $3 < min) min = $3} END {print min}')
    parallel=$(echo "$out" | awk '/^BenchmarkParallelRelease\/parallel/ {if (min == "" || $3 < min) min = $3} END {print min}')
    if [ -z "$serial" ] || [ -z "$parallel" ]; then
        echo "FAIL: could not parse BenchmarkParallelRelease output" >&2
        fail=1
    else
        speedup=$(awk -v s="$serial" -v p="$parallel" 'BEGIN {printf "%.2f", s / p}')
        echo "parallel release speedup at GOMAXPROCS=$procs: ${speedup}x"
        if awk -v x="$speedup" 'BEGIN {exit !(x < 4)}'; then
            echo "FAIL: parallel release speedup ${speedup}x < 4x at GOMAXPROCS=$procs" >&2
            fail=1
        else
            echo "OK: parallel release >= 4x over serial"
        fi
    fi
else
    echo "SKIP: parallel release speedup guard needs GOMAXPROCS >= 8 (have $procs)"
fi

# --- 4: indexed serving speedup ---------------------------------------
# One 100,800-edge release served unindexed versus through the CH
# index. -count=2 with best-of ratios de-flakes the gate; the unindexed
# oracle takes its fastest run, the indexed oracle its fastest too.
out=$(go test -bench '^BenchmarkOracleDistance$/^synthetic-100k(-ch)?$' -benchtime=30x -count=2 -run '^$' .)
echo "$out"
# The -N GOMAXPROCS suffix is absent when GOMAXPROCS=1.
plain=$(echo "$out" | awk '$1 ~ /^BenchmarkOracleDistance\/synthetic-100k(-[0-9]+)?$/ {if (min == "" || $3 < min) min = $3} END {print min}')
indexed=$(echo "$out" | awk '$1 ~ /^BenchmarkOracleDistance\/synthetic-100k-ch(-[0-9]+)?$/ {if (min == "" || $3 < min) min = $3} END {print min}')
if [ -z "$plain" ] || [ -z "$indexed" ]; then
    echo "FAIL: could not parse BenchmarkOracleDistance/synthetic-100k output" >&2
    fail=1
else
    speedup=$(awk -v p="$plain" -v i="$indexed" 'BEGIN {printf "%.1f", p / i}')
    echo "indexed query speedup on the 100k-edge release: ${speedup}x"
    if awk -v x="$speedup" 'BEGIN {exit !(x < 10)}'; then
        echo "FAIL: indexed oracle speedup ${speedup}x < 10x over unindexed Dijkstra" >&2
        fail=1
    else
        echo "OK: indexed oracle >= 10x over unindexed Dijkstra"
    fi
fi

# --- 5: HTTP serving overhead -----------------------------------------
# One Grid(60) release: the same point queries answered by the oracle
# directly versus through the serve handler. -count=2 with best-of
# ratios de-flakes the gate. The 2x bound is generous (measured ~1.05x:
# a few microseconds of HTTP atop a ~250us search) but catches any
# accidental per-request release work or lock contention on the path.
# BenchmarkServeDistance is parametrized by index mode; the overhead
# gate reads the unindexed (off) pair so the bound tracks the HTTP
# layer, not index speed.
out=$(go test -bench '^BenchmarkServeDistance$/^off$' -benchtime=50x -count=2 -run '^$' ./internal/serve)
echo "$out"
direct=$(echo "$out" | awk '$1 ~ /^BenchmarkServeDistance\/off\/direct(-[0-9]+)?$/ {if (min == "" || $3 < min) min = $3} END {print min}')
served=$(echo "$out" | awk '$1 ~ /^BenchmarkServeDistance\/off\/http(-[0-9]+)?$/ {if (min == "" || $3 < min) min = $3} END {print min}')
if [ -z "$direct" ] || [ -z "$served" ]; then
    echo "FAIL: could not parse BenchmarkServeDistance output" >&2
    fail=1
else
    ratio=$(awk -v d="$direct" -v s="$served" 'BEGIN {printf "%.2f", s / d}')
    echo "HTTP serving overhead over the direct oracle call: ${ratio}x"
    if awk -v x="$ratio" 'BEGIN {exit !(x > 2)}'; then
        echo "FAIL: serve hot path is ${ratio}x the direct oracle call, want <= 2x" >&2
        fail=1
    else
        echo "OK: serve hot path within 2x of the direct oracle call"
    fi
fi

# --- 6: snapshot restore speedup ---------------------------------------
# The same 100,800-edge CH-indexed release, restored two ways: full
# re-materialization versus unsealing a snapshot artifact. Both end
# with one answered query. -count=2 with best-of ratios de-flakes the
# gate; measured ~95x against the 50x bound.
out=$(go test -bench '^BenchmarkSnapshotRestore$' -benchtime=3x -count=2 -run '^$' .)
echo "$out"
remat=$(echo "$out" | awk '$1 ~ /^BenchmarkSnapshotRestore\/rematerialize(-[0-9]+)?$/ {if (min == "" || $3 < min) min = $3} END {print min}')
unseal=$(echo "$out" | awk '$1 ~ /^BenchmarkSnapshotRestore\/unseal(-[0-9]+)?$/ {if (min == "" || $3 < min) min = $3} END {print min}')
if [ -z "$remat" ] || [ -z "$unseal" ]; then
    echo "FAIL: could not parse BenchmarkSnapshotRestore output" >&2
    fail=1
else
    speedup=$(awk -v r="$remat" -v u="$unseal" 'BEGIN {printf "%.1f", r / u}')
    echo "snapshot restore speedup over re-materialization: ${speedup}x"
    if awk -v x="$speedup" 'BEGIN {exit !(x < 50)}'; then
        echo "FAIL: snapshot restore ${speedup}x < 50x over re-materialization" >&2
        fail=1
    else
        echo "OK: snapshot restore >= 50x faster than re-materialization"
    fi
fi

# --- 7: hub labeling + PHAST -------------------------------------------
# The same 100,800-edge grid at the index layer: hub-label point query
# versus the CH bidirectional search, and one PHAST sweep versus the
# same targets asked per pair. -count=2 with best-of ratios de-flakes
# both gates; measured ~70x (point) and ~25x (sweep) against the 5x and
# 3x bounds. Both hot paths must also be allocation-free.
out=$(go test -bench '^BenchmarkIndexDistance$/^(ch|hl)$|^BenchmarkIndexOneToMany$' \
    -benchmem -benchtime=50x -count=2 -run '^$' ./internal/graph/index)
echo "$out"
chpt=$(echo "$out" | awk '$1 ~ /^BenchmarkIndexDistance\/ch(-[0-9]+)?$/ {if (min == "" || $3 < min) min = $3} END {print min}')
hlpt=$(echo "$out" | awk '$1 ~ /^BenchmarkIndexDistance\/hl(-[0-9]+)?$/ {if (min == "" || $3 < min) min = $3} END {print min}')
perpair=$(echo "$out" | awk '$1 ~ /^BenchmarkIndexOneToMany\/ch-perpair(-[0-9]+)?$/ {if (min == "" || $3 < min) min = $3} END {print min}')
phast=$(echo "$out" | awk '$1 ~ /^BenchmarkIndexOneToMany\/phast(-[0-9]+)?$/ {if (min == "" || $3 < min) min = $3} END {print min}')
if [ -z "$chpt" ] || [ -z "$hlpt" ] || [ -z "$perpair" ] || [ -z "$phast" ]; then
    echo "FAIL: could not parse the hub-label/PHAST benchmark output" >&2
    fail=1
else
    speedup=$(awk -v c="$chpt" -v h="$hlpt" 'BEGIN {printf "%.1f", c / h}')
    echo "hub-label point-query speedup over CH: ${speedup}x"
    if awk -v x="$speedup" 'BEGIN {exit !(x < 5)}'; then
        echo "FAIL: hub-label point query ${speedup}x < 5x over the CH search" >&2
        fail=1
    else
        echo "OK: hub-label point query >= 5x over the CH search"
    fi
    speedup=$(awk -v p="$perpair" -v s="$phast" 'BEGIN {printf "%.1f", p / s}')
    echo "PHAST one-to-many speedup over per-pair CH: ${speedup}x"
    if awk -v x="$speedup" 'BEGIN {exit !(x < 3)}'; then
        echo "FAIL: PHAST sweep ${speedup}x < 3x over per-pair CH queries" >&2
        fail=1
    else
        echo "OK: PHAST sweep >= 3x over per-pair CH queries"
    fi
fi
bad=$(echo "$out" | awk '$1 ~ /^Benchmark(IndexDistance\/hl|IndexOneToMany\/phast)(-[0-9]+)?$/ && $(NF) == "allocs/op" && $(NF-1)+0 > 0')
if [ -n "$bad" ]; then
    echo >&2
    echo "FAIL: hub-label and PHAST hot paths must be allocation-free:" >&2
    echo "$bad" >&2
    fail=1
else
    echo "OK: hub-label point queries and PHAST sweeps report 0 allocs/op"
fi

# --- 8: zero-allocation serving + sweep coalescing ---------------------
# (a) The handler-level claim at its strongest: testing.AllocsPerRun
# over the real handlers must count exactly zero allocations.
if go test -run 'TestServeDistanceZeroAlloc|TestServeDistancesZeroAlloc' -count=1 ./internal/serve; then
    echo "OK: point and batch serve handlers allocate nothing steady-state"
else
    echo "FAIL: serve handlers are no longer allocation-free" >&2
    fail=1
fi

# (b) End to end over real HTTP: build the CLI, seal hub-label and CH
# releases of the 100,800-edge grid, and boot two daemons from the
# snapshots — one plain, one with the sweep coalescer on.
workdir=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do kill "$pid" 2>/dev/null || true; done
    for pid in $pids; do wait "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/dpgraph" ./cmd/dpgraph
awk 'BEGIN {
    side = 225
    print "graph", side * side
    for (r = 0; r < side; r++)
        for (c = 0; c < side; c++) {
            v = r * side + c
            if (c + 1 < side) print "edge", v, v + 1, 1 + v % 7
            if (r + 1 < side) print "edge", v, v + side, 1 + (v + 3) % 7
        }
}' > "$workdir/grid.txt"
mkdir -p "$workdir/snapA" "$workdir/snapB"
"$workdir/dpgraph" -graph "$workdir/grid.txt" -eps 1 -seed 42 -index hl seal release -out "$workdir/snapA/hl.dpsnap"
"$workdir/dpgraph" -graph "$workdir/grid.txt" -eps 1 -seed 42 -index ch seal release -out "$workdir/snapA/ch.dpsnap"
cp "$workdir/snapA/ch.dpsnap" "$workdir/snapB/ch.dpsnap"

# wait_url polls a daemon log for the listen announcement, which is
# printed only after the snapshot dir has been restored.
wait_url() { # logfile
    local url=""
    for _ in $(seq 1 150); do
        url=$(awk '/serving .* on http/ {print $NF; exit}' "$1" 2>/dev/null || true)
        [ -n "$url" ] && break
        sleep 0.1
    done
    if [ -z "$url" ]; then
        echo "FAIL: daemon never started listening ($1):" >&2
        cat "$1" >&2
        return 1
    fi
    echo "$url"
}
"$workdir/dpgraph" -graph "$workdir/grid.txt" serve -addr 127.0.0.1:0 -max-inflight 0 \
    -snapshot-dir "$workdir/snapA" > "$workdir/a.log" 2>&1 &
pids="$pids $!"
"$workdir/dpgraph" -graph "$workdir/grid.txt" serve -addr 127.0.0.1:0 -max-inflight 0 \
    -snapshot-dir "$workdir/snapB" -coalesce-window 20ms -coalesce-max 128 > "$workdir/b.log" 2>&1 &
pids="$pids $!"
urlA=$(wait_url "$workdir/a.log") || exit 1
urlB=$(wait_url "$workdir/b.log") || exit 1

# Pipelined stream throughput on the hub-label release.
out=$("$workdir/dpgraph" bench-serve -url "$urlA" -release hl -n 200000 -c 4 -stream)
echo "$out"
streamqps=$(echo "$out" | awk '/pairs\/s pipelined/ {print $2}')
if [ -z "$streamqps" ]; then
    echo "FAIL: could not parse the stream bench output" >&2
    fail=1
elif awk -v x="$streamqps" 'BEGIN {exit !(x < 100000)}'; then
    echo "FAIL: pipelined stream throughput ${streamqps} pairs/s < 100k" >&2
    fail=1
else
    echo "OK: pipelined NDJSON stream serves ${streamqps} pairs/s (>= 100k)"
fi

# Coalesced vs uncoalesced same-source throughput on the CH release:
# 256 concurrent clients, every request a distinct target from vertex
# 0, so the only difference is whether the daemon merges them into
# shared PHAST sweeps.
outA=$("$workdir/dpgraph" bench-serve -url "$urlA" -release ch -n 4096 -c 256 -source 0)
echo "$outA"
outB=$("$workdir/dpgraph" bench-serve -url "$urlB" -release ch -n 4096 -c 256 -source 0)
echo "$outB"
qpsA=$(echo "$outA" | awk '/requests\/s/ {print $2}')
qpsB=$(echo "$outB" | awk '/requests\/s/ {print $2}')
if [ -z "$qpsA" ] || [ -z "$qpsB" ]; then
    echo "FAIL: could not parse the coalescing bench output" >&2
    fail=1
else
    ratio=$(awk -v a="$qpsA" -v b="$qpsB" 'BEGIN {printf "%.2f", b / a}')
    echo "coalesced same-source speedup: ${ratio}x (${qpsB} vs ${qpsA} requests/s)"
    if awk -v x="$ratio" 'BEGIN {exit !(x < 2)}'; then
        echo "FAIL: coalesced same-source throughput ${ratio}x < 2x uncoalesced" >&2
        fail=1
    else
        echo "OK: sweep coalescing >= 2x on 256 concurrent same-source clients"
    fi
fi

# --- 9: fleet scaling + fault recovery ---------------------------------
# (a) `dpgraph fleet` boots real replica and coordinator processes and
# benches through the coordinator at every scale. The release is
# unindexed so each query costs a real Dijkstra and a GOMAXPROCS=1
# replica is CPU-bound — added replicas add real capacity.
awk 'BEGIN {
    side = 60
    print "graph", side * side
    for (r = 0; r < side; r++)
        for (c = 0; c < side; c++) {
            v = r * side + c
            if (c + 1 < side) print "edge", v, v + 1, 1 + v % 7
            if (r + 1 < side) print "edge", v, v + side, 1 + (v + 3) % 7
        }
}' > "$workdir/fleetgrid.txt"
if [ "$procs" -ge 6 ]; then
    out=$("$workdir/dpgraph" fleet -graph "$workdir/fleetgrid.txt" -n 3 -procs 1 -requests 4000 -c 16)
    echo "$out"
    one=$(echo "$out" | awk '/^fleet: scale 1 -> / {print $5}')
    three=$(echo "$out" | awk '/^fleet: scale 3 -> / {print $5}')
    if [ -z "$one" ] || [ -z "$three" ]; then
        echo "FAIL: could not parse the fleet scaling output" >&2
        fail=1
    else
        ratio=$(awk -v a="$one" -v b="$three" 'BEGIN {printf "%.2f", b / a}')
        echo "fleet scaling 1 -> 3 replicas: ${ratio}x (${three} vs ${one} requests/s)"
        if awk -v x="$ratio" 'BEGIN {exit !(x < 2)}'; then
            echo "FAIL: 3-replica aggregate qps ${ratio}x < 2x a single replica" >&2
            fail=1
        else
            echo "OK: 3 replicas deliver >= 2x single-replica throughput"
        fi
    fi
else
    echo "SKIP: fleet scaling guard needs >= 6 cores (have $procs)"
fi

# (b) Kill -9 one of three live replicas: the coordinator must mark it
# evicted within two probe intervals (plus scheduling slack for the
# shell poll loop) and the degraded pool must pass a bench within a 1%
# error budget.
mkdir -p "$workdir/fleetsnap"
"$workdir/dpgraph" -graph "$workdir/fleetgrid.txt" -eps 1 -seed 7 seal release \
    -out "$workdir/fleetsnap/bench.dpsnap"
repurls=""
reppids=""
for i in 1 2 3; do
    GOMAXPROCS=1 "$workdir/dpgraph" -graph "$workdir/fleetgrid.txt" serve -addr 127.0.0.1:0 \
        -snapshot-dir "$workdir/fleetsnap" -drain-grace 0s > "$workdir/rep$i.log" 2>&1 &
    pids="$pids $!"
    reppids="$reppids $!"
    url=$(wait_url "$workdir/rep$i.log") || exit 1
    repurls="$repurls,$url"
done
repurls=${repurls#,}
"$workdir/dpgraph" route -addr 127.0.0.1:0 -probe-interval 250ms -drain-grace 0s \
    -replicas "$repurls" > "$workdir/route.log" 2>&1 &
pids="$pids $!"
routeurl=""
for _ in $(seq 1 150); do
    routeurl=$(awk '/routing .* on http/ {print $NF; exit}' "$workdir/route.log" 2>/dev/null || true)
    [ -n "$routeurl" ] && break
    sleep 0.1
done
if [ -z "$routeurl" ]; then
    echo "FAIL: route coordinator never started listening:" >&2
    cat "$workdir/route.log" >&2
    exit 1
fi
healthy=0
for _ in $(seq 1 100); do
    healthy=$(curl -s "$routeurl/v1/replicas" | grep -c '"healthy"' || true)
    [ "$healthy" = 3 ] && break
    sleep 0.05
done
if [ "$healthy" != 3 ]; then
    echo "FAIL: only $healthy of 3 replicas became healthy at the coordinator" >&2
    fail=1
else
    victim=$(echo "$reppids" | awk '{print $NF}')
    kill -9 "$victim"
    start=$(date +%s%N)
    evicted=""
    for _ in $(seq 1 60); do
        if curl -s "$routeurl/v1/replicas" | grep -q '"evicted"'; then
            evicted=1
            break
        fi
        sleep 0.05
    done
    elapsed_ms=$(( ($(date +%s%N) - start) / 1000000 ))
    # Two 250ms probe cycles cover the worst case (kill lands right
    # after a probe); 500ms of slack absorbs curl + shell scheduling.
    if [ -z "$evicted" ]; then
        echo "FAIL: killed replica was never evicted" >&2
        fail=1
    elif [ "$elapsed_ms" -gt 1000 ]; then
        echo "FAIL: eviction took ${elapsed_ms}ms, want <= 2 probe intervals (500ms + slack)" >&2
        fail=1
    else
        echo "OK: killed replica evicted after ${elapsed_ms}ms (probe interval 250ms)"
    fi
    if out=$("$workdir/dpgraph" bench-serve -url "$routeurl" -release bench \
            -n 2000 -c 8 -timeout 5s -max-error-rate 0.01); then
        echo "$out"
        echo "OK: degraded 2-replica pool served the bench within a 1% error budget"
    else
        echo "$out"
        echo "FAIL: bench through the degraded pool exceeded the 1% error budget" >&2
        fail=1
    fi
fi

exit "$fail"
