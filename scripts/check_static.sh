#!/usr/bin/env bash
# Static-analysis gate: dpvet (the repo's five privacy/perf analyzers)
# plus pinned third-party checkers when available, plus a short fuzz
# smoke over the two checked-in corpora.
#
# 1. dpvet, standalone and as a go vet -vettool: noiserand (no seeded
#    math/rand in privacy-critical packages), budgetflow (mechanisms
#    charge the accountant on every success path), hotpath (annotated
#    functions stay allocation-free), lockheld (no blocking ops under
#    serving-tier mutexes, consistent lock order), floatcmp (no float
#    equality outside tests). Zero unexplained diagnostics: every
#    finding is fixed or carries a justified //dpvet:allow.
# 2. staticcheck + govulncheck, pinned versions, when the binaries are
#    on PATH. Offline dev boxes skip them with a notice; CI sets
#    STATIC_STRICT=1 to turn a missing binary into a failure.
# 3. Fuzz smoke: FuzzUnseal (sealed-artifact decoder) and
#    FuzzParsePairs (fast/strict pair-parser differential) run their
#    checked-in testdata corpora plus a short -fuzztime budget.
set -euo pipefail
cd "$(dirname "$0")/.."

STATICCHECK_VERSION=2023.1.7
FUZZTIME=${FUZZTIME:-10s}

echo "== dpvet: build =="
go build -o /tmp/dpvet ./cmd/dpvet

echo "== dpvet: standalone =="
/tmp/dpvet ./...

echo "== dpvet: go vet -vettool =="
go vet -vettool=/tmp/dpvet ./...

echo "== dpvet: self-test (analyzer + e2e suites) =="
go test -count=1 ./internal/analysis/ ./cmd/dpvet/

run_pinned() {
  local name=$1 version=$2; shift 2
  if command -v "$name" >/dev/null 2>&1; then
    echo "== $name =="
    "$@"
  elif [ "${STATIC_STRICT:-0}" = "1" ]; then
    echo "FAIL: $name $version required (STATIC_STRICT=1) but not installed" >&2
    exit 1
  else
    echo "== $name: SKIP (not installed; pin $version, set STATIC_STRICT=1 to require) =="
  fi
}

run_pinned staticcheck "$STATICCHECK_VERSION" staticcheck ./...
run_pinned govulncheck latest govulncheck ./...

echo "== fuzz smoke: FuzzUnseal ($FUZZTIME) =="
go test -run '^$' -fuzz '^FuzzUnseal$' -fuzztime "$FUZZTIME" ./dpgraph

echo "== fuzz smoke: FuzzParsePairs ($FUZZTIME) =="
go test -run '^$' -fuzz '^FuzzParsePairs$' -fuzztime "$FUZZTIME" ./internal/serve

echo "ALL STATIC CHECKS PASSED"
